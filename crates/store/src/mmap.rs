//! Minimal memory-mapping layer over direct `mmap(2)` FFI.
//!
//! The build environment has no crates.io access, so instead of the
//! `memmap2` crate this module declares the three syscall wrappers it
//! needs (`mmap`, `munmap`, `madvise`) and wraps them in a safe,
//! read-only [`Mmap`] type. Mappings are always `PROT_READ` +
//! `MAP_PRIVATE`: the store never writes through a mapping, so a
//! shared snapshot file can back any number of concurrent readers
//! while the kernel keeps a single copy of every clean page.
//!
//! [`MmapMode`] is the user-facing `--mmap {auto,on,off}` knob: `on`
//! fails loudly when mapping is impossible, `off` forces the
//! heap-backed fallback, and `auto` (the default) tries the mapping
//! and silently falls back to heap on any error.

use std::fs::File;
use std::io;
use std::os::unix::io::AsRawFd;

// Linux syscall constants, from <sys/mman.h>. Only the ones the
// store uses; values are stable ABI on every Linux architecture the
// workspace targets (x86_64, aarch64).
const PROT_READ: i32 = 0x1;
const MAP_PRIVATE: i32 = 0x02;
const MADV_DONTNEED: i32 = 4;
const MADV_SEQUENTIAL: i32 = 2;
const MADV_RANDOM: i32 = 1;

const MAP_FAILED: *mut u8 = usize::MAX as *mut u8;

extern "C" {
    fn mmap(addr: *mut u8, len: usize, prot: i32, flags: i32, fd: i32, offset: i64) -> *mut u8;
    fn munmap(addr: *mut u8, len: usize) -> i32;
    fn madvise(addr: *mut u8, len: usize, advice: i32) -> i32;
}

/// How a snapshot file should be backed in memory.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum MmapMode {
    /// Try to map; fall back to a heap read on any failure.
    #[default]
    Auto,
    /// Map or fail: an error opening the mapping is surfaced.
    On,
    /// Never map: always read the file into a heap buffer.
    Off,
}

impl MmapMode {
    /// Parse the CLI spelling (`auto` / `on` / `off`).
    pub fn parse(s: &str) -> Option<MmapMode> {
        match s {
            "auto" => Some(MmapMode::Auto),
            "on" => Some(MmapMode::On),
            "off" => Some(MmapMode::Off),
            _ => None,
        }
    }

    pub fn as_str(&self) -> &'static str {
        match self {
            MmapMode::Auto => "auto",
            MmapMode::On => "on",
            MmapMode::Off => "off",
        }
    }
}

/// A read-only, private, file-backed memory mapping.
///
/// The mapping lives until drop; pages come in on demand and are
/// reclaimable by the kernel at any time, which is what keeps resident
/// memory decoupled from file size.
pub struct Mmap {
    ptr: *mut u8,
    len: usize,
}

// The mapping is immutable for its whole lifetime (PROT_READ and the
// store never calls mprotect), so shared references from any thread
// are fine, as is dropping on a different thread.
unsafe impl Send for Mmap {}
unsafe impl Sync for Mmap {}

impl Mmap {
    /// Map `len` bytes of `file` read-only from offset 0.
    ///
    /// `len == 0` is rejected (Linux `mmap` errors on zero length);
    /// callers handle empty files on the heap path.
    pub fn map(file: &File, len: usize) -> io::Result<Mmap> {
        if len == 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "cannot mmap an empty file",
            ));
        }
        let ptr = unsafe {
            mmap(
                std::ptr::null_mut(),
                len,
                PROT_READ,
                MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr == MAP_FAILED || ptr.is_null() {
            return Err(io::Error::last_os_error());
        }
        Ok(Mmap { ptr, len })
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn as_slice(&self) -> &[u8] {
        // Safety: ptr is a live PROT_READ mapping of exactly `len`
        // bytes, valid until drop.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }

    /// Tell the kernel a byte range will be read once, front to back.
    pub fn advise_sequential(&self, offset: usize, len: usize) {
        self.advise(offset, len, MADV_SEQUENTIAL);
    }

    /// Tell the kernel a byte range is accessed at random.
    ///
    /// This disables readahead *and* the fault-around optimization
    /// that maps in ~16 neighboring page-cache pages per fault.
    /// Without it, point lookups into a freshly written (fully
    /// cached) snapshot fault in whole neighborhoods and the
    /// process's RSS creeps toward the file size no matter how
    /// eagerly the bank evicts — the accounting only sees the bytes
    /// it asked for, not what the kernel mapped alongside them.
    pub fn advise_random(&self, offset: usize, len: usize) {
        self.advise(offset, len, MADV_RANDOM);
    }

    /// Drop the resident pages of a byte range.
    ///
    /// For a clean private file-backed mapping this releases the
    /// process's resident pages without losing data: the next access
    /// refaults from the page cache (or disk). This is the eviction
    /// primitive that bounds scan/serve RSS while scoring off a
    /// snapshot much larger than memory budget.
    pub fn advise_dontneed(&self, offset: usize, len: usize) {
        self.advise(offset, len, MADV_DONTNEED);
    }

    fn advise(&self, offset: usize, len: usize, advice: i32) {
        if offset >= self.len || len == 0 {
            return;
        }
        let page = page_size();
        // madvise wants a page-aligned start; round the start *down*
        // and the end up (clamped to the mapping) so the requested
        // range is fully covered.
        let start = (offset / page) * page;
        let end = (offset + len.min(self.len - offset)).div_ceil(page) * page;
        let end = end.min(self.len.div_ceil(page) * page);
        // Advice is best-effort by contract: a failure (e.g. a kernel
        // without the advice) only costs memory, never correctness.
        unsafe {
            madvise(self.ptr.add(start), end - start, advice);
        }
    }
}

impl Drop for Mmap {
    fn drop(&mut self) {
        unsafe {
            munmap(self.ptr, self.len);
        }
    }
}

/// The system page size, fetched once.
pub fn page_size() -> usize {
    use std::sync::atomic::{AtomicUsize, Ordering};
    static PAGE: AtomicUsize = AtomicUsize::new(0);
    let cached = PAGE.load(Ordering::Relaxed);
    if cached != 0 {
        return cached;
    }
    extern "C" {
        fn sysconf(name: i32) -> i64;
    }
    const _SC_PAGESIZE: i32 = 30;
    let sz = unsafe { sysconf(_SC_PAGESIZE) };
    let sz = if sz > 0 { sz as usize } else { 4096 };
    PAGE.store(sz, Ordering::Relaxed);
    sz
}

/// A heap byte buffer with 8-byte base alignment, so sections read
/// into it can be reinterpreted as `&[f32]` exactly like mapped ones
/// (a plain `Vec<u8>` only guarantees 1-byte alignment).
pub struct AlignedBuf {
    words: Vec<u64>,
    len: usize,
}

impl AlignedBuf {
    pub fn zeroed(len: usize) -> AlignedBuf {
        AlignedBuf {
            words: vec![0u64; len.div_ceil(8)],
            len,
        }
    }

    pub fn as_slice(&self) -> &[u8] {
        // Safety: words holds at least `len` initialized bytes and
        // u64 -> u8 loosens alignment.
        unsafe { std::slice::from_raw_parts(self.words.as_ptr() as *const u8, self.len) }
    }

    pub fn as_mut_slice(&mut self) -> &mut [u8] {
        unsafe { std::slice::from_raw_parts_mut(self.words.as_mut_ptr() as *mut u8, self.len) }
    }
}

/// File bytes, either mapped in place or owned on the heap — the two
/// backing strategies behind [`MmapMode`].
pub enum FileBytes {
    Mapped(Mmap),
    Heap(AlignedBuf),
}

impl FileBytes {
    pub fn as_slice(&self) -> &[u8] {
        match self {
            FileBytes::Mapped(m) => m.as_slice(),
            FileBytes::Heap(v) => v.as_slice(),
        }
    }

    pub fn is_mapped(&self) -> bool {
        matches!(self, FileBytes::Mapped(_))
    }

    /// Evict the resident pages of a byte range (no-op on heap).
    pub fn advise_dontneed(&self, offset: usize, len: usize) {
        if let FileBytes::Mapped(m) = self {
            m.advise_dontneed(offset, len);
        }
    }

    /// Mark a byte range random-access (no-op on heap). See
    /// [`Mmap::advise_random`].
    pub fn advise_random(&self, offset: usize, len: usize) {
        if let FileBytes::Mapped(m) = self {
            m.advise_random(offset, len);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    #[test]
    fn map_reads_file_contents() {
        let dir = std::env::temp_dir().join("pge-store-mmap-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("map_reads.bin");
        let data: Vec<u8> = (0..10_000u32).flat_map(|i| i.to_le_bytes()).collect();
        std::fs::File::create(&path)
            .unwrap()
            .write_all(&data)
            .unwrap();
        let f = std::fs::File::open(&path).unwrap();
        let m = Mmap::map(&f, data.len()).unwrap();
        assert_eq!(m.as_slice(), &data[..]);
        // Eviction must not change observable contents.
        m.advise_dontneed(0, m.len());
        assert_eq!(m.as_slice(), &data[..]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_map_is_rejected() {
        let dir = std::env::temp_dir().join("pge-store-mmap-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("empty.bin");
        std::fs::File::create(&path).unwrap();
        let f = std::fs::File::open(&path).unwrap();
        assert!(Mmap::map(&f, 0).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mode_parses_cli_spellings() {
        assert_eq!(MmapMode::parse("auto"), Some(MmapMode::Auto));
        assert_eq!(MmapMode::parse("on"), Some(MmapMode::On));
        assert_eq!(MmapMode::parse("off"), Some(MmapMode::Off));
        assert_eq!(MmapMode::parse("maybe"), None);
        assert_eq!(MmapMode::On.as_str(), "on");
    }
}
