//! pge-store — the out-of-core storage layer under the PGE stack.
//!
//! Three pieces, all zero-dependency (direct `mmap(2)` FFI instead of
//! a mapping crate, matching the workspace's vendored-only policy):
//!
//! * **PGEBIN02** ([`format`], [`reader`]): a sectioned snapshot
//!   container — fixed header, 64-byte-aligned raw f32 LE sections,
//!   per-section CRC-32, name string table — designed to be memory-
//!   mapped and read in place. [`Snapshot`] validates everything at
//!   open and serves sections as borrowed `&[f32]` rows.
//! * **Embedding banks** ([`bank`]): precomputed entity vectors with
//!   a hash-sorted key index, served straight off the page cache with
//!   budgeted `MADV_DONTNEED` eviction so scan/serve RSS stays far
//!   below the table size.
//! * **PGECAT01** ([`catalog`]): a streaming binary catalog of raw
//!   triples for paper-scale datagen and bulk scans, with whole-body
//!   CRC verification at open.
//!
//! Heap fallbacks exist for every mapped path (`--mmap off`), and the
//! two backings are bit-identical by construction: rows on disk are
//! the exact bit patterns the encoder produced.

// In-place `&[u8] -> &[f32]` reads assume the on-disk little-endian
// layout is the in-memory one. Every supported target is LE; make a
// port to a BE target a compile error instead of silent corruption.
#[cfg(target_endian = "big")]
compile_error!("pge-store serves PGEBIN02 sections in place and requires a little-endian target");

pub mod bank;
pub mod catalog;
pub mod format;
pub mod mmap;
pub mod reader;

pub use bank::{BankBuilder, EmbeddingBank, DEFAULT_RESIDENT_BUDGET};
pub use catalog::{
    CatalogReader, CatalogRecord, CatalogRecords, CatalogSummary, CatalogWriter, CAT_MAGIC,
};
pub use format::{SectionKind, SnapshotWriter, MAGIC2};
pub use mmap::{page_size, MmapMode};
pub use reader::{peek_magic, Snapshot};

use std::fmt;
use std::io;

/// Typed errors for every store operation.
#[derive(Debug)]
pub enum StoreError {
    /// The file does not start with a magic this store knows.
    UnknownFormat {
        magic: [u8; 8],
    },
    /// Structurally valid framing but failed CRC / bounds checks.
    Corrupt(String),
    /// Recognized format, unsupported contents (e.g. future version).
    Parse(String),
    /// `--mmap on` was requested and the mapping failed.
    MmapFailed(io::Error),
    /// A required section is absent from the snapshot.
    MissingSection(String),
    /// A section exists but has the wrong kind for the request.
    WrongKind {
        name: String,
    },
    Io(io::Error),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::UnknownFormat { magic } => {
                write!(f, "unknown snapshot format (leading bytes {magic:02x?})")
            }
            StoreError::Corrupt(m) => write!(f, "corrupt store file: {m}"),
            StoreError::Parse(m) => write!(f, "unsupported store file: {m}"),
            StoreError::MmapFailed(e) => {
                write!(f, "mmap failed (and --mmap on forbids fallback): {e}")
            }
            StoreError::MissingSection(n) => write!(f, "snapshot is missing section {n:?}"),
            StoreError::WrongKind { name } => {
                write!(f, "section {name:?} has the wrong kind for this access")
            }
            StoreError::Io(e) => write!(f, "store i/o error: {e}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) | StoreError::MmapFailed(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use std::sync::Arc;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("pge-store-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn write_sample_snapshot(path: &std::path::Path) {
        let mut w = SnapshotWriter::create(path).unwrap();
        w.add_bytes("meta", b"hello snapshot").unwrap();
        let vals: Vec<f32> = (0..96).map(|i| (i as f32) * 0.25 - 3.0).collect();
        w.add_f32s("rows", 12, 8, &vals).unwrap();
        w.finish().unwrap();
    }

    #[test]
    fn roundtrip_mapped_and_heap_agree() {
        let path = tmp("roundtrip.pgebin2");
        write_sample_snapshot(&path);
        for mode in [MmapMode::Auto, MmapMode::On, MmapMode::Off] {
            let s = Snapshot::open(&path, mode).unwrap();
            assert_eq!(s.section("meta").unwrap().bytes, b"hello snapshot");
            let rows = s.section("rows").unwrap();
            assert_eq!((rows.meta.rows, rows.meta.cols), (12, 8));
            let f = rows.as_f32s().unwrap();
            assert_eq!(f.len(), 96);
            assert_eq!(f[5].to_bits(), ((5.0f32) * 0.25 - 3.0).to_bits());
            if mode == MmapMode::On {
                assert!(s.is_mapped());
            }
            if mode == MmapMode::Off {
                assert!(!s.is_mapped());
            }
        }
        // Mapped and heap reads must be bitwise identical.
        let a = Snapshot::open(&path, MmapMode::On).unwrap();
        let b = Snapshot::open(&path, MmapMode::Off).unwrap();
        assert_eq!(
            a.section("rows").unwrap().bytes,
            b.section("rows").unwrap().bytes
        );
    }

    #[test]
    fn sections_are_64_byte_aligned() {
        let path = tmp("aligned.pgebin2");
        write_sample_snapshot(&path);
        let s = Snapshot::open(&path, MmapMode::Auto).unwrap();
        for m in s.sections() {
            assert_eq!(m.offset % 64, 0, "section {:?} misaligned", m.name);
        }
    }

    #[test]
    fn wrong_magic_is_unknown_format() {
        let path = tmp("nonsense.bin");
        std::fs::write(&path, b"NOTPGE00 some other file entirely").unwrap();
        match Snapshot::open(&path, MmapMode::Auto) {
            Err(StoreError::UnknownFormat { magic }) => assert_eq!(&magic, b"NOTPGE00"),
            other => panic!("expected UnknownFormat, got {other:?}"),
        }
    }

    #[test]
    fn flipped_payload_bit_is_rejected_with_section_name() {
        let path = tmp("tampered.pgebin2");
        write_sample_snapshot(&path);
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip one bit inside the rows payload (after header+meta).
        let s = Snapshot::open(&path, MmapMode::Off).unwrap();
        let off = s
            .sections()
            .iter()
            .find(|m| m.name == "rows")
            .unwrap()
            .offset as usize;
        drop(s);
        bytes[off + 17] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();
        match Snapshot::open(&path, MmapMode::Off) {
            Err(StoreError::Corrupt(m)) => assert!(m.contains("rows"), "message: {m}"),
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn truncated_snapshot_is_rejected() {
        let path = tmp("truncated.pgebin2");
        write_sample_snapshot(&path);
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 7]).unwrap();
        assert!(matches!(
            Snapshot::open(&path, MmapMode::Auto),
            Err(StoreError::Corrupt(_))
        ));
    }

    #[test]
    fn bank_roundtrip_lookup_and_bit_identity() {
        let path = tmp("bank.pgebin2");
        let keys = [
            "spicy tortilla chips",
            "sweet honey granola",
            "flavor",
            "honey",
            "spicy queso",
        ];
        let dim = 8;
        // A deterministic fake "encoder": hash-derived rows.
        let embed = |k: &str, out: &mut Vec<f32>| {
            let h = bank::fnv64(k.as_bytes());
            out.extend((0..dim).map(|i| ((h >> (i * 7)) & 0xff) as f32 / 17.0));
        };
        let mut w = SnapshotWriter::create(&path).unwrap();
        let mut b = BankBuilder::new();
        for k in keys {
            b.add(k);
            b.add(k); // dedupe
        }
        assert_eq!(b.len(), keys.len());
        b.write_sections(&mut w, dim, embed).unwrap();
        w.finish().unwrap();

        for mode in [MmapMode::On, MmapMode::Off] {
            let snap = Arc::new(Snapshot::open(&path, mode).unwrap());
            // 64-byte budget = two dim-8 rows: forces evictions mid-test.
            let bank = EmbeddingBank::open(snap, 64).unwrap().expect("bank");
            assert_eq!(bank.len(), keys.len());
            assert_eq!(bank.dim(), dim);
            for k in keys {
                let mut want = Vec::new();
                embed(k, &mut want);
                let got = bank.lookup(k).expect("hit");
                assert_eq!(
                    got.iter().map(|f| f.to_bits()).collect::<Vec<_>>(),
                    want.iter().map(|f| f.to_bits()).collect::<Vec<_>>(),
                    "row for {k:?} must be bit-identical (mode {mode:?})"
                );
            }
            assert!(bank.lookup("never seen").is_none());
            // Tiny budget above forces evictions on the mapped path;
            // contents must be unaffected.
            if mode == MmapMode::On {
                assert!(bank.evictions() > 0);
                assert!(bank.lookup(keys[0]).is_some());
            }
            let (hits, misses) = bank.hit_stats();
            assert_eq!(hits, keys.len() as u64 + u64::from(mode == MmapMode::On));
            assert_eq!(misses, 1);
        }
    }

    #[test]
    fn bank_eviction_accounting_is_exact_under_concurrency() {
        // Regression: the touched-bytes counter used to be reset with
        // a racy `compare_exchange(t, 0)` — concurrent lookups could
        // lose the CAS (skipping evictions entirely) or win it and
        // discard the over-budget residual. The subtract-claim scheme
        // must satisfy `evictions == floor(total_charged / budget)`
        // exactly, for any interleaving.
        let path = tmp("bank-concurrent.pgebin2");
        let dim = 8;
        let keys: Vec<String> = (0..32).map(|i| format!("entity {i}")).collect();
        let embed = |k: &str, out: &mut Vec<f32>| {
            let h = bank::fnv64(k.as_bytes());
            out.extend((0..dim).map(|i| ((h >> (i * 5)) & 0xff) as f32 / 13.0));
        };
        let mut w = SnapshotWriter::create(&path).unwrap();
        let mut b = BankBuilder::new();
        for k in &keys {
            b.add(k);
        }
        b.write_sections(&mut w, dim, embed).unwrap();
        w.finish().unwrap();

        let snap = Arc::new(Snapshot::open(&path, MmapMode::On).unwrap());
        assert!(snap.is_mapped(), "test requires the mapped path");
        // The same per-lookup charge note_touch computes.
        let touch_bytes = 2 * (64u64 << 10).max(page_size() as u64);
        // A budget that doesn't divide evenly into charges, so the
        // residual bookkeeping actually matters.
        let budget = 5 * touch_bytes + touch_bytes / 2;
        let bank = EmbeddingBank::open(snap, budget).unwrap().expect("bank");

        let threads = 8;
        let lookups = 250usize;
        std::thread::scope(|s| {
            for t in 0..threads {
                let bank = &bank;
                let keys = &keys;
                s.spawn(move || {
                    for j in 0..lookups {
                        if j % 4 == 0 {
                            assert!(bank.lookup("no such entity").is_none());
                        } else {
                            let k = &keys[(t * lookups + j) % keys.len()];
                            assert!(bank.lookup(k).is_some(), "missing {k}");
                        }
                    }
                });
            }
        });

        let total_charged = threads as u64 * lookups as u64 * touch_bytes;
        assert_eq!(
            bank.evictions(),
            total_charged / budget,
            "every budget's worth of charged bytes must evict exactly once \
             (total {total_charged}, budget {budget})"
        );
        let (hits, misses) = bank.hit_stats();
        assert_eq!(hits + misses, (threads * lookups) as u64);
        // Explicit eviction claims whatever is pending and counts once.
        let before = bank.evictions();
        bank.evict_resident();
        assert_eq!(bank.evictions(), before + 1);
    }

    #[test]
    fn snapshot_without_bank_opens_as_none() {
        let path = tmp("nobank.pgebin2");
        write_sample_snapshot(&path);
        let snap = Arc::new(Snapshot::open(&path, MmapMode::Off).unwrap());
        assert!(EmbeddingBank::open(snap, 0).unwrap().is_none());
    }

    #[test]
    fn catalog_roundtrip_and_resume() {
        let path = tmp("catalog.bin");
        let mut w = CatalogWriter::create(&path, 13).unwrap();
        for i in 0..100 {
            w.note_product();
            w.add_triple(
                &format!("product {i}"),
                "flavor",
                &format!("taste {}", i % 7),
            )
            .unwrap();
            w.add_triple(&format!("product {i}"), "brand", "acme")
                .unwrap();
        }
        let sum = w.finish().unwrap();
        assert_eq!((sum.products, sum.triples), (100, 200));

        let r = CatalogReader::open(&path).unwrap();
        assert_eq!((r.seed(), r.products(), r.triples()), (13, 100, 200));
        let all: Vec<_> = r.records().unwrap().map(|x| x.unwrap()).collect();
        assert_eq!(all.len(), 200);
        assert_eq!(all[0].line, 1);
        assert_eq!(all[3].title, "product 1");
        assert_eq!(all[3].attr, "brand");
        assert_eq!(all[3].value, "acme");

        // Resume from the middle using the iterator's own position.
        let mut it = r.records().unwrap();
        for _ in 0..77 {
            it.next().unwrap().unwrap();
        }
        let resumed: Vec<_> = r
            .records_from(it.lines_done(), it.offset())
            .unwrap()
            .map(|x| x.unwrap())
            .collect();
        assert_eq!(resumed.len(), 123);
        assert_eq!(resumed[0], all[77]);
        assert_eq!(resumed.last(), all.last());
    }

    #[test]
    fn tampered_catalog_is_rejected() {
        let path = tmp("catalog-tampered.bin");
        let mut w = CatalogWriter::create(&path, 1).unwrap();
        w.add_triple("a product", "flavor", "mild").unwrap();
        w.finish().unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n - 2] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        match CatalogReader::open(&path) {
            Err(StoreError::Corrupt(m)) => assert!(m.contains("CRC"), "message: {m}"),
            other => panic!("expected Corrupt, got {other:?}"),
        }
        // Truncation is also typed.
        std::fs::write(&path, &bytes[..n - 3]).unwrap();
        assert!(matches!(
            CatalogReader::open(&path),
            Err(StoreError::Corrupt(_))
        ));
    }

    #[test]
    fn catalog_rejects_fields_with_tabs() {
        let path = tmp("catalog-tabs.bin");
        let mut w = CatalogWriter::create(&path, 1).unwrap();
        assert!(w.add_triple("bad\ttitle", "flavor", "mild").is_err());
        assert!(w.add_triple("ok", "flavor", "bad\nvalue").is_err());
        assert!(w.add_triple("ok", "flavor", "mild").is_ok());
    }
}
