//! Kill-at-every-epoch-boundary resume fuzz (ISSUE 5 tentpole proof).
//!
//! For every epoch k, a run checkpointed at k and resumed must finish
//! with a **byte-identical** model snapshot (CRC-equal by
//! construction) and confidence table to an uninterrupted run — at
//! `threads` 1 and 4, and even when the kill and the resume use
//! *different* thread counts. Tampered checkpoints and mismatched
//! corpora must be rejected with typed errors.

use pge_core::{
    save_model_binary, train_pge_resumable, CheckpointOptions, PersistError, PgeConfig, TrainedPge,
    CHECKPOINT_FILE,
};
use pge_graph::{Dataset, ProductGraph};
use std::path::PathBuf;

fn tiny_dataset() -> Dataset {
    let mut g = ProductGraph::new();
    let mut train = Vec::new();
    for i in 0..24 {
        let (flavor, ing) = if i % 2 == 0 {
            ("spicy", "cayenne pepper")
        } else {
            ("sweet", "cane sugar")
        };
        let title = format!("brand{i} {flavor} snack chips {i}");
        train.push(g.add_fact(&title, "flavor", flavor));
        train.push(g.add_fact(&title, "ingredient", ing));
    }
    Dataset::new(g, train, vec![], vec![])
}

fn cfg(threads: usize) -> PgeConfig {
    PgeConfig {
        epochs: 4,
        threads,
        // Noise-aware on, warmup mid-run, so the fuzz also proves the
        // confidence table survives the checkpoint bit-exactly.
        noise_aware: true,
        confidence_warmup: 1,
        ..PgeConfig::tiny()
    }
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pge-resume-{tag}-{}", std::process::id()));
    // Stale state from a crashed earlier run must not leak in.
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn fingerprint(out: &TrainedPge) -> (Vec<u8>, Vec<u32>) {
    (
        save_model_binary(&out.model).unwrap(),
        out.confidence
            .scores()
            .iter()
            .map(|c| c.to_bits())
            .collect(),
    )
}

#[test]
fn kill_at_every_epoch_resumes_bit_identically() {
    let d = tiny_dataset();
    for threads in [1, 4] {
        let cfg = cfg(threads);
        let baseline = fingerprint(&train_pge_resumable(&d, &cfg, None, None).unwrap());
        for kill_after in 1..cfg.epochs {
            let dir = scratch_dir(&format!("t{threads}k{kill_after}"));
            let mut opts = CheckpointOptions::new(&dir);
            opts.stop_after = Some(kill_after);
            let killed = train_pge_resumable(&d, &cfg, None, Some(&opts)).unwrap();
            assert_eq!(
                killed.epoch_losses.len(),
                kill_after,
                "stop_after must halt at the boundary"
            );
            let resumed =
                train_pge_resumable(&d, &cfg, None, Some(&CheckpointOptions::resume(&dir)))
                    .unwrap();
            let got = fingerprint(&resumed);
            assert_eq!(
                got.0, baseline.0,
                "threads={threads} kill_after={kill_after}: model diverged"
            );
            assert_eq!(
                got.1, baseline.1,
                "threads={threads} kill_after={kill_after}: confidence diverged"
            );
            assert_eq!(resumed.epoch_losses.len(), cfg.epochs);
            std::fs::remove_dir_all(&dir).unwrap();
        }
    }
}

#[test]
fn resume_may_change_thread_count() {
    let d = tiny_dataset();
    let baseline = fingerprint(&train_pge_resumable(&d, &cfg(1), None, None).unwrap());
    for (kill_threads, resume_threads) in [(1, 4), (4, 1)] {
        let dir = scratch_dir(&format!("x{kill_threads}{resume_threads}"));
        let mut opts = CheckpointOptions::new(&dir);
        opts.stop_after = Some(2);
        train_pge_resumable(&d, &cfg(kill_threads), None, Some(&opts)).unwrap();
        let resumed = train_pge_resumable(
            &d,
            &cfg(resume_threads),
            None,
            Some(&CheckpointOptions::resume(&dir)),
        )
        .unwrap();
        assert_eq!(
            fingerprint(&resumed),
            baseline,
            "kill at --threads {kill_threads}, resume at --threads {resume_threads}"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

#[test]
fn tampered_checkpoint_is_rejected() {
    let d = tiny_dataset();
    let dir = scratch_dir("tamper");
    let mut opts = CheckpointOptions::new(&dir);
    opts.stop_after = Some(1);
    train_pge_resumable(&d, &cfg(1), None, Some(&opts)).unwrap();
    let path = dir.join(CHECKPOINT_FILE);
    let mut bytes = std::fs::read(&path).unwrap();
    let ix = bytes.len() / 2;
    bytes[ix] ^= 0x01;
    std::fs::write(&path, &bytes).unwrap();
    match train_pge_resumable(&d, &cfg(1), None, Some(&CheckpointOptions::resume(&dir))) {
        Err(PersistError::Corrupt(msg)) => assert!(msg.contains("CRC-32"), "{msg}"),
        other => panic!("expected Corrupt, got {:?}", other.map(|_| "TrainedPge")),
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn mismatched_corpus_and_config_are_rejected() {
    let d = tiny_dataset();
    let dir = scratch_dir("mismatch");
    let mut opts = CheckpointOptions::new(&dir);
    opts.stop_after = Some(1);
    train_pge_resumable(&d, &cfg(1), None, Some(&opts)).unwrap();

    // Same config, different corpus → corpus-fingerprint rejection.
    let mut other = tiny_dataset();
    other.graph.add_fact("brandX cola drink", "flavor", "cola");
    match train_pge_resumable(
        &other,
        &cfg(1),
        None,
        Some(&CheckpointOptions::resume(&dir)),
    ) {
        Err(PersistError::Mismatch(msg)) => assert!(msg.contains("corpus"), "{msg}"),
        other => panic!("expected Mismatch, got {:?}", other.map(|_| "TrainedPge")),
    }

    // Same corpus, different config (lr) → config-hash rejection.
    let other_cfg = PgeConfig { lr: 0.5, ..cfg(1) };
    match train_pge_resumable(&d, &other_cfg, None, Some(&CheckpointOptions::resume(&dir))) {
        Err(PersistError::Mismatch(msg)) => assert!(msg.contains("config"), "{msg}"),
        other => panic!("expected Mismatch, got {:?}", other.map(|_| "TrainedPge")),
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn resume_without_checkpoint_is_a_clear_error() {
    let d = tiny_dataset();
    let dir = scratch_dir("absent");
    match train_pge_resumable(&d, &cfg(1), None, Some(&CheckpointOptions::resume(&dir))) {
        Err(PersistError::Io(msg)) => assert!(msg.contains("no training checkpoint"), "{msg}"),
        other => panic!("expected Io, got {:?}", other.map(|_| "TrainedPge")),
    }
}
