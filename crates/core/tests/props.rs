//! Property-based tests for scoring functions and the confidence
//! mechanism.

use pge_core::{ConfidenceStore, EmbeddingCache, ScoreKind, Scorer};
use pge_nn::gradcheck;
use proptest::prelude::*;

const KINDS: [ScoreKind; 4] = [
    ScoreKind::TransE,
    ScoreKind::RotatE,
    ScoreKind::DistMult,
    ScoreKind::ComplEx,
];

fn vec_of(n: usize, seed: u64) -> Vec<f32> {
    (0..n)
        .map(|i| (((i as u64 + 1) * (seed + 7)) % 997) as f32 / 499.0 - 1.0)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn all_scorers_gradcheck_random_inputs(
        kind_ix in 0usize..4,
        half_dim in 1usize..6,
        seed in 0u64..10_000,
        gamma in 0.5f32..12.0,
    ) {
        let kind = KINDS[kind_ix];
        let d = half_dim * 2;
        let s = Scorer::new(kind, gamma);
        let h = vec_of(d, seed);
        let r = vec_of(s.rel_dim(d), seed + 1);
        let t = vec_of(d, seed + 2);
        // Keep away from |x| kinks for the L1-based scorers.
        let near_kink = match kind {
            ScoreKind::TransE => (0..d).any(|i| (h[i] + r[i] - t[i]).abs() < 0.05),
            _ => false,
        };
        prop_assume!(!near_kink);

        let mut dh = vec![0.0; d];
        let mut dr = vec![0.0; r.len()];
        let mut dt = vec![0.0; d];
        s.backward(&h, &r, &t, 1.0, &mut dh, &mut dr, &mut dt);
        let nh = gradcheck::numeric_input_grad(&h, |x| s.score(x, &r, &t));
        let nr = gradcheck::numeric_input_grad(&r, |x| s.score(&h, x, &t));
        let nt = gradcheck::numeric_input_grad(&t, |x| s.score(&h, &r, x));
        gradcheck::assert_close(&dh, &nh, 5e-2, "prop dh");
        gradcheck::assert_close(&dr, &nr, 5e-2, "prop dr");
        gradcheck::assert_close(&dt, &nt, 5e-2, "prop dt");
    }

    #[test]
    fn scores_are_finite(kind_ix in 0usize..4, half_dim in 1usize..8, seed in 0u64..10_000) {
        let kind = KINDS[kind_ix];
        let d = half_dim * 2;
        let s = Scorer::new(kind, 6.0);
        let h = vec_of(d, seed);
        let r = vec_of(s.rel_dim(d), seed + 3);
        let t = vec_of(d, seed + 4);
        prop_assert!(s.score(&h, &r, &t).is_finite());
    }

    #[test]
    fn distance_scorers_never_exceed_gamma(
        half_dim in 1usize..8,
        seed in 0u64..10_000,
        gamma in 0.0f32..24.0,
    ) {
        for kind in [ScoreKind::TransE, ScoreKind::RotatE] {
            let d = half_dim * 2;
            let s = Scorer::new(kind, gamma);
            let h = vec_of(d, seed);
            let r = vec_of(s.rel_dim(d), seed + 5);
            let t = vec_of(d, seed + 6);
            prop_assert!(s.score(&h, &r, &t) <= gamma + 1e-5);
        }
    }

    #[test]
    fn confidence_always_clamped(
        losses in prop::collection::vec(-10.0f32..10.0, 1..100),
        alpha in 0.0f32..3.0,
        beta in 0.0f32..1.0,
        lr in 0.001f32..1.0,
    ) {
        let mut store = ConfidenceStore::new(1, alpha, beta, lr);
        for &l in &losses {
            store.update(0, l);
            let c = store.get(0);
            prop_assert!((0.0..=1.0).contains(&c), "C = {c}");
        }
    }

    #[test]
    fn cache_len_never_exceeds_capacity(
        capacity in 0usize..64,
        keys in prop::collection::vec(0u16..512, 0..300),
    ) {
        // Regression: ceil-rounded per-shard caps let the cache hold
        // up to 15 entries more than the requested capacity.
        let cache = EmbeddingCache::new(capacity);
        for k in &keys {
            let v = cache.get_or_compute(&format!("k{k}"), || vec![f32::from(*k)]);
            prop_assert_eq!(v, vec![f32::from(*k)]);
        }
        prop_assert!(
            cache.len() <= capacity,
            "len {} exceeds capacity {}", cache.len(), capacity
        );
    }

    #[test]
    fn confidence_monotone_in_loss_pressure(
        alpha in 0.2f32..2.0,
        lr in 0.01f32..0.2,
        steps in 10usize..100,
    ) {
        // Higher persistent loss must end with (weakly) lower C.
        let mut low = ConfidenceStore::new(1, alpha, 0.0, lr);
        let mut high = ConfidenceStore::new(1, alpha, 0.0, lr);
        for _ in 0..steps {
            low.update(0, alpha * 0.5);
            high.update(0, alpha * 2.0);
        }
        prop_assert!(high.get(0) <= low.get(0) + 1e-6);
    }
}
