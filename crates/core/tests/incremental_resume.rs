//! Kill-at-every-window-boundary resume fuzz for `train --incremental`
//! (ISSUE 10 tentpole proof).
//!
//! For every window boundary k, an ingest killed after k windows and
//! resumed must finish with a **byte-identical** model snapshot and
//! confidence table to an uninterrupted ingest — at `threads` 1 and 4,
//! and when the kill and the resume use *different* thread counts.
//! Per-window PGEBIN02 snapshots must also be byte-identical between
//! the killed+resumed and uninterrupted runs. A checkpoint written
//! under one confidence backend must be rejected by a resume under the
//! other.

use pge_core::{
    save_model_binary, train_incremental, train_pge_resumable, CheckpointOptions,
    ConfidenceBackend, IncrementalConfig, IncrementalOutcome, PersistError, PgeConfig,
    CHECKPOINT_FILE,
};
use pge_graph::{Dataset, DeltaOp, DeltaWindow, ProductGraph, TripleDelta};
use std::path::{Path, PathBuf};

fn tiny_dataset() -> Dataset {
    let mut g = ProductGraph::new();
    let mut train = Vec::new();
    for i in 0..24 {
        let (flavor, ing) = if i % 2 == 0 {
            ("spicy", "cayenne pepper")
        } else {
            ("sweet", "cane sugar")
        };
        let title = format!("brand{i} {flavor} snack chips {i}");
        train.push(g.add_fact(&title, "flavor", flavor));
        train.push(g.add_fact(&title, "ingredient", ing));
    }
    Dataset::new(g, train, vec![], vec![])
}

fn cfg(threads: usize) -> PgeConfig {
    PgeConfig {
        epochs: 3,
        threads,
        noise_aware: true,
        confidence_warmup: 1,
        ..PgeConfig::tiny()
    }
}

fn add(title: &str, attr: &str, value: &str) -> TripleDelta {
    TripleDelta {
        op: DeltaOp::Add,
        title: title.into(),
        attr: attr.into(),
        value: value.into(),
    }
}

fn retract(title: &str, attr: &str, value: &str) -> TripleDelta {
    TripleDelta {
        op: DeltaOp::Retract,
        title: title.into(),
        attr: attr.into(),
        value: value.into(),
    }
}

/// Three windows of mixed churn: adds, a correction (retract + add),
/// and a plain withdrawal against the 24-product base.
fn windows() -> Vec<DeltaWindow> {
    vec![
        DeltaWindow {
            index: 0,
            ops: vec![
                add("newbrand sour gummy 100", "flavor", "sour"),
                add("newbrand sour gummy 100", "ingredient", "citric acid"),
                add("newbrand spicy jerky 101", "flavor", "spicy"),
                add("newbrand spicy jerky 101", "ingredient", "cayenne pepper"),
                retract("brand0 spicy snack chips 0", "flavor", "spicy"),
            ],
        },
        DeltaWindow {
            index: 1,
            ops: vec![
                // Correction: the window-0 "sour" product is actually
                // sweet.
                retract("newbrand sour gummy 100", "flavor", "sour"),
                add("newbrand sour gummy 100", "flavor", "sweet"),
                add("newbrand sweet cookies 102", "flavor", "sweet"),
                add("newbrand sweet cookies 102", "ingredient", "cane sugar"),
            ],
        },
        DeltaWindow {
            index: 2,
            ops: vec![
                add("newbrand spicy salsa 103", "flavor", "spicy"),
                retract("brand1 sweet snack chips 1", "ingredient", "cane sugar"),
            ],
        },
    ]
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pge-incr-resume-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Write the base run's checkpoint into `dir` (the state every ingest
/// warm-starts from).
fn seed_base_checkpoint(base: &Dataset, cfg: &PgeConfig, dir: &Path) {
    train_pge_resumable(base, cfg, None, Some(&CheckpointOptions::new(dir))).unwrap();
}

fn fingerprint(o: &IncrementalOutcome) -> (Vec<u8>, Vec<u32>, Vec<bool>) {
    (
        save_model_binary(&o.model).unwrap(),
        o.confidence.scores().iter().map(|c| c.to_bits()).collect(),
        o.live.clone(),
    )
}

fn run(
    base: &Dataset,
    cfg: &PgeConfig,
    dir: &Path,
    resume: bool,
    stop_after: Option<usize>,
) -> Result<IncrementalOutcome, PersistError> {
    let mut opts = if resume {
        CheckpointOptions::resume(dir)
    } else {
        CheckpointOptions::new(dir)
    };
    opts.stop_after = stop_after;
    let inc = IncrementalConfig::new(dir.join("snapshots"));
    train_incremental(base, &windows(), cfg, &inc, &opts, None)
}

#[test]
fn kill_at_every_window_resumes_bit_identically() {
    let base = tiny_dataset();
    let n_windows = windows().len();
    for threads in [1, 4] {
        let cfg = cfg(threads);
        let base_dir = scratch_dir(&format!("base-t{threads}"));
        seed_base_checkpoint(&base, &cfg, &base_dir);

        let full_dir = scratch_dir(&format!("full-t{threads}"));
        std::fs::create_dir_all(&full_dir).unwrap();
        std::fs::copy(
            base_dir.join(CHECKPOINT_FILE),
            full_dir.join(CHECKPOINT_FILE),
        )
        .unwrap();
        let uninterrupted = run(&base, &cfg, &full_dir, false, None).unwrap();
        assert_eq!(uninterrupted.windows_done, n_windows);
        let baseline = fingerprint(&uninterrupted);

        for kill_after in 1..n_windows {
            let dir = scratch_dir(&format!("t{threads}k{kill_after}"));
            std::fs::create_dir_all(&dir).unwrap();
            std::fs::copy(base_dir.join(CHECKPOINT_FILE), dir.join(CHECKPOINT_FILE)).unwrap();

            let killed = run(&base, &cfg, &dir, false, Some(kill_after)).unwrap();
            assert_eq!(
                killed.windows_done, kill_after,
                "stop_after must halt at the window boundary"
            );

            let resumed = run(&base, &cfg, &dir, true, None).unwrap();
            assert_eq!(resumed.windows_done, n_windows);
            let got = fingerprint(&resumed);
            assert_eq!(
                got.0, baseline.0,
                "threads={threads} kill_after={kill_after}: model diverged"
            );
            assert_eq!(
                got.1, baseline.1,
                "threads={threads} kill_after={kill_after}: confidence diverged"
            );
            assert_eq!(
                got.2, baseline.2,
                "threads={threads} kill_after={kill_after}: live mask diverged"
            );
            // Per-window snapshots byte-match the uninterrupted run's.
            for w in 0..n_windows {
                let name = format!("window-{w}.pgebin");
                let a = std::fs::read(full_dir.join("snapshots").join(&name)).unwrap();
                let b = std::fs::read(dir.join("snapshots").join(&name)).unwrap();
                assert_eq!(
                    a, b,
                    "threads={threads} kill_after={kill_after}: snapshot {name} diverged"
                );
            }
            std::fs::remove_dir_all(&dir).unwrap();
        }
        std::fs::remove_dir_all(&base_dir).unwrap();
        std::fs::remove_dir_all(&full_dir).unwrap();
    }
}

#[test]
fn resume_may_change_thread_count() {
    let base = tiny_dataset();
    let base_dir = scratch_dir("xbase");
    seed_base_checkpoint(&base, &cfg(1), &base_dir);

    let full_dir = scratch_dir("xfull");
    std::fs::create_dir_all(&full_dir).unwrap();
    std::fs::copy(
        base_dir.join(CHECKPOINT_FILE),
        full_dir.join(CHECKPOINT_FILE),
    )
    .unwrap();
    let baseline = fingerprint(&run(&base, &cfg(1), &full_dir, false, None).unwrap());

    for (kill_threads, resume_threads) in [(1, 4), (4, 1)] {
        let dir = scratch_dir(&format!("x{kill_threads}{resume_threads}"));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::copy(base_dir.join(CHECKPOINT_FILE), dir.join(CHECKPOINT_FILE)).unwrap();
        run(&base, &cfg(kill_threads), &dir, false, Some(1)).unwrap();
        let resumed = run(&base, &cfg(resume_threads), &dir, true, None).unwrap();
        assert_eq!(
            fingerprint(&resumed),
            baseline,
            "kill at --threads {kill_threads}, resume at --threads {resume_threads}"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
    std::fs::remove_dir_all(&base_dir).unwrap();
    std::fs::remove_dir_all(&full_dir).unwrap();
}

#[test]
fn backend_mismatch_is_rejected() {
    let base = tiny_dataset();
    let dir = scratch_dir("backend");
    // Base checkpoint written under the default Eq. 6 backend …
    seed_base_checkpoint(&base, &cfg(1), &dir);
    // … must reject an ingest under the contrastive backend: its
    // confidence table was produced by a different update rule.
    let cca = PgeConfig {
        confidence: ConfidenceBackend::Cca,
        ..cfg(1)
    };
    match run(&base, &cca, &dir, false, None) {
        Err(PersistError::Mismatch(msg)) => {
            assert!(
                msg.contains("config") || msg.contains("backend"),
                "unexpected message: {msg}"
            );
        }
        other => panic!(
            "expected Mismatch, got {:?}",
            other.map(|_| "IncrementalOutcome")
        ),
    }
    std::fs::remove_dir_all(&dir).unwrap();
}
