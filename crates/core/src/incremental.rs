//! Streaming incremental training: `pge train --incremental`.
//!
//! A catalog churns; retraining from scratch on every batch of edits
//! wastes almost all of its work re-learning what the model already
//! knows. This module warm-starts from a `PGECKPT1` checkpoint (the
//! full trainer state: parameters, Adam moments, confidence table,
//! backend aux state) and ingests a delta stream window by window:
//!
//! 1. apply the window's adds/retractions to the dataset
//!    ([`pge_graph::apply_window`]) and extend the model's token
//!    caches over the grown graph;
//! 2. fine-tune a few epochs over **only the touched rows** (the
//!    window's live adds), continuing the global Adam step so moment
//!    bias correction stays exact;
//! 3. write a durable window checkpoint (`incremental.ckpt`, kept
//!    next to — never on top of — the base run's `trainer.ckpt`);
//! 4. emit a fresh `PGEBIN02` snapshot for the window and optionally
//!    push it to a running gateway via `POST /admin/reload` with
//!    bounded retry/backoff ([`push_snapshot`]).
//!
//! # Exact resume
//!
//! Kill+resume is byte-identical at any window boundary and any
//! `--threads`: every random stream is a pure function of
//! `(seed, epoch-id, index)`, fine-tune epochs use epoch ids disjoint
//! from the base run's (`cfg.epochs + window * epochs_per_window +
//! e`), and confidence updates apply in fixed lane order. The window
//! checkpoint stores [`pge_graph::stream_fingerprint`] over the
//! ingested prefix, so resuming against an edited or truncated delta
//! stream is a typed [`PersistError::Mismatch`], not silent
//! corruption.
//!
//! Retracted train entries stay **positional** (confidence tables and
//! sampling streams index by position): they are masked out of
//! training and their confidence is pinned to zero, which also
//! removes them from every future loss term.

use crate::checkpoint::{
    config_hash, data_fingerprint, CheckpointOptions, TrainerState, CHECKPOINT_FILE,
};
use crate::confidence::ConfidenceStore;
use crate::encoder::{EncoderKind, TextEncoder};
use crate::model::PgeModel;
use crate::persist::{save_model_store, PersistError};
use crate::trainer::{
    resolve_threads, run_lanes, shuffle_seed, BatchCtx, Lane, PgeConfig, GRAD_LANES,
};
use pge_graph::{apply_window, stream_fingerprint, Dataset, DeltaWindow, NegativeSampler};
use pge_nn::AdamHparams;
use pge_obs::{ingest_event, RunLog};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// File name of the incremental window checkpoint, stored in the same
/// directory as (but never overwriting) the base `trainer.ckpt`.
pub const INCREMENTAL_CHECKPOINT_FILE: &str = "incremental.ckpt";

/// Knobs of an incremental ingest run, on top of the base
/// [`PgeConfig`] (which must match the warm-start checkpoint exactly,
/// `--threads` excepted).
#[derive(Clone, Debug)]
pub struct IncrementalConfig {
    /// Fine-tune epochs over each window's touched rows.
    pub epochs_per_window: usize,
    /// Directory receiving one `window-{k}.pgebin` snapshot per
    /// ingested window (per-window files: a gateway may still be
    /// serving the previous one off its mapping).
    pub snapshot_dir: PathBuf,
    /// Gateway address (`host:port`) to push each window's snapshot
    /// to via `POST /admin/reload`; `None` disables pushing.
    pub push: Option<String>,
    /// Bounded retry budget per push (connect errors, 409 busy, and
    /// 503 retryable reload failures all consume attempts).
    pub push_attempts: usize,
    /// Base backoff between push attempts; doubles per retry, capped
    /// at two seconds.
    pub push_backoff_ms: u64,
}

impl IncrementalConfig {
    pub fn new(snapshot_dir: impl Into<PathBuf>) -> IncrementalConfig {
        IncrementalConfig {
            epochs_per_window: 2,
            snapshot_dir: snapshot_dir.into(),
            push: None,
            push_attempts: 5,
            push_backoff_ms: 50,
        }
    }
}

/// Outcome of one snapshot push: which window, which file, the
/// gateway's new snapshot generation, and how many attempts it took.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PushReport {
    /// Ingest window the snapshot belongs to (filled by the ingest
    /// loop; [`push_snapshot`] itself returns it as 0).
    pub window: usize,
    pub snapshot: PathBuf,
    /// Snapshot generation the gateway reported after the swap.
    pub version: u64,
    /// Attempts consumed (1 = first try succeeded).
    pub attempts: usize,
}

/// The result of an incremental ingest run.
#[derive(Debug)]
pub struct IncrementalOutcome {
    pub model: PgeModel,
    /// Confidence table over the *evolved* train split (retracted
    /// entries pinned to zero).
    pub confidence: ConfidenceStore,
    /// The dataset after every ingested window (grown graph, extended
    /// train split).
    pub dataset: Dataset,
    /// Live mask over `dataset.train` (false = retracted).
    pub live: Vec<bool>,
    /// Windows ingested across the whole run (including ones replayed
    /// from the resume checkpoint).
    pub windows_done: usize,
    /// Mean fine-tune loss per window ingested *by this process*.
    pub window_losses: Vec<f32>,
    /// Snapshot file per window ingested by this process.
    pub snapshots: Vec<PathBuf>,
    /// One report per successful gateway push.
    pub pushes: Vec<PushReport>,
    pub train_secs: f64,
}

/// Ingest `windows` on top of `base`, warm-starting from the
/// checkpoint in `ckpt.dir`.
///
/// * Fresh runs (`ckpt.resume == false`) warm-start from the base
///   run's `trainer.ckpt` and ingest from window 0.
/// * Resumed runs load `incremental.ckpt` when present (continuing
///   after its `windows_done`), falling back to `trainer.ckpt` when a
///   kill landed before the first window checkpoint.
/// * `ckpt.stop_after = Some(k)` simulates a kill once `k` windows
///   total have been ingested and checkpointed (tests and CI).
///
/// Rejected with a typed error: a config/corpus mismatch against the
/// checkpoint, a different `--confidence` backend, or a delta stream
/// whose ingested prefix does not fingerprint-match the checkpoint.
pub fn train_incremental(
    base: &Dataset,
    windows: &[DeltaWindow],
    cfg: &PgeConfig,
    inc: &IncrementalConfig,
    ckpt: &CheckpointOptions,
    log: Option<&RunLog>,
) -> Result<IncrementalOutcome, PersistError> {
    let start = Instant::now();
    if cfg.encoder == EncoderKind::Bert {
        return Err(PersistError::UnsupportedEncoder);
    }
    let cfg_hash = config_hash(cfg);
    let base_fp = data_fingerprint(base);

    // Warm start: the incremental checkpoint when resuming past one,
    // otherwise the base trainer checkpoint.
    let inc_ckpt = ckpt.dir.join(INCREMENTAL_CHECKPOINT_FILE);
    let state = if ckpt.resume && inc_ckpt.exists() {
        TrainerState::load_as(&ckpt.dir, INCREMENTAL_CHECKPOINT_FILE)?
    } else {
        TrainerState::load_as(&ckpt.dir, CHECKPOINT_FILE)?
    };
    state.verify_backend(cfg.confidence.name())?;
    state.verify(cfg_hash, base_fp)?;
    if state.windows_done > windows.len() {
        return Err(PersistError::Mismatch(format!(
            "checkpoint has ingested {} delta windows but the stream only provides {} — \
             point --deltas at the stream the run was started with",
            state.windows_done,
            windows.len()
        )));
    }
    // Replay the already-ingested prefix to rebuild the evolved
    // dataset, then prove it is the same prefix the checkpoint saw.
    let mut dataset = base.clone();
    let mut live = vec![true; dataset.train.len()];
    for w in &windows[..state.windows_done] {
        apply_window(&mut dataset, &mut live, w);
    }
    // (The base checkpoint stores delta_fingerprint = 0 with zero
    // windows ingested; there is no prefix to verify until an
    // incremental checkpoint exists.)
    let prefix_fp = stream_fingerprint(&windows[..state.windows_done]);
    if state.windows_done > 0 && prefix_fp != state.delta_fingerprint {
        return Err(PersistError::Mismatch(format!(
            "checkpoint ingested a delta-stream prefix with fingerprint {:016x} but this \
             stream's first {} windows fingerprint to {prefix_fp:016x}; the stream was \
             edited or replaced — resume with the original delta file",
            state.delta_fingerprint, state.windows_done
        )));
    }

    // The restored model's token caches already cover the replayed
    // graph: `restore_model` rebuilds them from the graph we just
    // evolved.
    let mut model = state.restore_model(&dataset.graph)?;
    let ent_dim = model.encoder.out_dim();
    let mut confidence =
        ConfidenceStore::new(dataset.train.len(), cfg.alpha, cfg.beta, cfg.confidence_lr);
    confidence
        .restore_scores(&state.confidence)
        .map_err(PersistError::Mismatch)?;
    let mut updater = cfg
        .confidence
        .make_updater(dataset.graph.num_attrs(), ent_dim);
    updater
        .restore_aux(&state.aux)
        .map_err(PersistError::Mismatch)?;

    let hp = AdamHparams::with_lr(cfg.lr);
    let k = cfg.negatives.max(1);
    let workers = resolve_threads(cfg.threads);
    let mut lanes: Vec<Lane> = {
        let TextEncoder::Cnn(enc) = &model.encoder else {
            unreachable!("Bert rejected above")
        };
        Lane::buffers(enc, model.scorer.rel_dim(ent_dim))
    };
    let mut step = state.step;
    let mut epoch_losses = state.epoch_losses.clone();
    let mut windows_done = state.windows_done;
    let mut window_losses = Vec::new();
    let mut snapshots = Vec::new();
    let mut pushes = Vec::new();

    for (w, window) in windows.iter().enumerate().skip(state.windows_done) {
        let window_start = Instant::now();
        let applied = apply_window(&mut dataset, &mut live, window);
        model.extend_token_caches(&dataset.graph);
        while confidence.len() < dataset.train.len() {
            confidence.push_default();
        }
        for &i in &applied.retracted {
            confidence.set(i, 0.0);
        }
        // The graph grew: rebuild the sampler so fresh values are
        // drawable as corruptions.
        let sampler = NegativeSampler::new(&dataset.graph, cfg.sampling);
        // Touched rows = this window's adds still live at its end (an
        // add retracted within the same window never trains).
        let touched: Vec<usize> = applied.added.iter().copied().filter(|&i| live[i]).collect();

        let mut loss_sum = 0.0f64;
        let mut loss_n = 0usize;
        let mut order = touched.clone();
        for e in 0..inc.epochs_per_window {
            // Disjoint from every base-run epoch id, pure in
            // (window, e): a resumed run regenerates the exact
            // shuffle and sampling streams.
            let epoch_id = cfg.epochs + w * inc.epochs_per_window + e;
            order.copy_from_slice(&touched);
            let mut shuffle_rng = StdRng::seed_from_u64(shuffle_seed(cfg.seed, epoch_id));
            for i in (1..order.len()).rev() {
                order.swap(i, shuffle_rng.gen_range(0..=i));
            }
            for batch in order.chunks(cfg.batch.max(1)) {
                step += 1;
                {
                    let TextEncoder::Cnn(enc) = &model.encoder else {
                        unreachable!()
                    };
                    let ctx = BatchCtx {
                        enc,
                        relations: &model.relations,
                        scorer: model.scorer,
                        title_tokens: &model.title_tokens,
                        value_tokens: &model.value_tokens,
                        train: &dataset.train,
                        sampler: &sampler,
                        confidence: &confidence,
                        // The base run is past warmup by construction;
                        // confidence adapts from the first window.
                        confidence_active: cfg.noise_aware,
                        capture_contrast: cfg.noise_aware && updater.wants_contrast(),
                        k,
                        epoch: epoch_id,
                        seed: cfg.seed,
                    };
                    let per_worker = GRAD_LANES.div_ceil(workers);
                    if workers == 1 {
                        run_lanes(&ctx, batch, &mut lanes, 0);
                    } else {
                        std::thread::scope(|s| {
                            let handles: Vec<_> = lanes
                                .chunks_mut(per_worker)
                                .enumerate()
                                .map(|(wk, chunk)| {
                                    let ctx = &ctx;
                                    s.spawn(move || run_lanes(ctx, batch, chunk, wk * per_worker))
                                })
                                .collect();
                            for h in handles {
                                h.join().expect("incremental worker panicked");
                            }
                        });
                    }
                }
                // Fixed lane-order reduction — thread-count invariant.
                let PgeModel {
                    encoder, relations, ..
                } = &mut model;
                let TextEncoder::Cnn(enc) = encoder else {
                    unreachable!()
                };
                for lane in &mut lanes {
                    enc.apply_grads(&mut lane.grads);
                    relations.apply_sparse_grads(&mut lane.rel);
                    for sig in lane.conf.drain(..) {
                        updater.apply(&mut confidence, sig);
                    }
                    loss_sum += lane.loss_sum;
                    loss_n += lane.loss_n;
                    lane.loss_sum = 0.0;
                    lane.loss_n = 0;
                    lane.negs = 0;
                }
                model.encoder.adam_step(&hp, step);
                model.relations.adam_step(&hp, step);
            }
        }
        let mean_loss = if loss_n == 0 {
            0.0
        } else {
            (loss_sum / loss_n as f64) as f32
        };
        epoch_losses.push(mean_loss);
        window_losses.push(mean_loss);

        // Snapshot first, checkpoint second: a kill between the two
        // re-ingests this window on resume (bit-identical by
        // determinism) and rewrites the identical snapshot.
        std::fs::create_dir_all(&inc.snapshot_dir)
            .map_err(|e| PersistError::Io(format!("create {}: {e}", inc.snapshot_dir.display())))?;
        let snap_path = inc.snapshot_dir.join(format!("window-{w}.pgebin"));
        save_model_store(&model, &snap_path)?;
        snapshots.push(snap_path.clone());

        let mut st = TrainerState::capture(
            &model,
            &confidence,
            state.epochs_done,
            step,
            cfg_hash,
            base_fp,
            &epoch_losses,
            cfg.confidence.name(),
            &updater.aux_state(),
        )?;
        st.delta_fingerprint = stream_fingerprint(&windows[..=w]);
        st.windows_done = w + 1;
        st.store_as(&ckpt.dir, INCREMENTAL_CHECKPOINT_FILE)?;
        windows_done = w + 1;

        let mut push_version = -1.0f64;
        if let Some(addr) = &inc.push {
            let mut report =
                push_snapshot(addr, &snap_path, inc.push_attempts, inc.push_backoff_ms)
                    .map_err(|e| PersistError::Io(format!("push window {w} to {addr}: {e}")))?;
            report.window = w;
            push_version = report.version as f64;
            pushes.push(report);
        }
        if let Some(log) = log {
            log.write(&ingest_event(&[
                ("window", w as f64),
                ("added", applied.added.len() as f64),
                ("retracted", applied.retracted.len() as f64),
                ("missed_retractions", applied.missed_retractions as f64),
                ("train_len", dataset.train.len() as f64),
                ("mean_loss", mean_loss as f64),
                ("secs", window_start.elapsed().as_secs_f64()),
                ("push_version", push_version),
            ]));
        }
        // Simulated kill at a window boundary (the checkpoint is on
        // disk; the process "dies" here).
        if ckpt.stop_after == Some(w + 1) {
            break;
        }
    }

    Ok(IncrementalOutcome {
        model,
        confidence,
        dataset,
        live,
        windows_done,
        window_losses,
        snapshots,
        pushes,
        train_secs: start.elapsed().as_secs_f64(),
    })
}

/// Minimal JSON string escape for the reload request body.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// One push attempt: POST the reload, read the full response, return
/// `(status, body)`.
fn push_once(addr: &str, snapshot: &Path) -> Result<(u16, String), String> {
    let body = format!(
        "{{\"path\": \"{}\"}}",
        json_escape(&snapshot.to_string_lossy())
    );
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .map_err(|e| format!("set timeout: {e}"))?;
    let req = format!(
        "POST /admin/reload HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream
        .write_all(req.as_bytes())
        .map_err(|e| format!("send: {e}"))?;
    let mut resp = String::new();
    stream
        .read_to_string(&mut resp)
        .map_err(|e| format!("read response: {e}"))?;
    let status: u16 = resp
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| {
            format!(
                "malformed response: {:?}",
                resp.lines().next().unwrap_or("")
            )
        })?;
    let body = resp
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    Ok((status, body))
}

/// Push a snapshot to a gateway's `POST /admin/reload` with bounded
/// retry/backoff.
///
/// Retried (consuming one attempt each): connection/transport errors,
/// `409` (another reload in flight), and `503` (the gateway classed
/// the failure retryable — e.g. the snapshot's CRC check raced a
/// writer that had not patched the header yet). Any other non-200 is
/// a hard error. The backoff doubles per retry from
/// `backoff_ms`, capped at two seconds.
///
/// On success the returned [`PushReport`] carries the gateway's new
/// snapshot generation (`window` is left 0 for the caller to fill).
pub fn push_snapshot(
    addr: &str,
    snapshot: &Path,
    attempts: usize,
    backoff_ms: u64,
) -> Result<PushReport, String> {
    let attempts = attempts.max(1);
    let mut last_err = String::new();
    for attempt in 1..=attempts {
        match push_once(addr, snapshot) {
            Ok((200, body)) => {
                // The gateway answers {"swapped": true, "version": N}.
                let version = body
                    .split("\"version\":")
                    .nth(1)
                    .map(|rest| {
                        rest.trim_start()
                            .chars()
                            .take_while(|c| {
                                c.is_ascii_digit() || matches!(c, '.' | 'e' | '+' | '-')
                            })
                            .collect::<String>()
                    })
                    .and_then(|n| n.parse::<f64>().ok())
                    .ok_or_else(|| format!("reload succeeded but no version in body {body:?}"))?;
                return Ok(PushReport {
                    window: 0,
                    snapshot: snapshot.to_path_buf(),
                    version: version as u64,
                    attempts: attempt,
                });
            }
            Ok((status @ (409 | 503), body)) => {
                last_err = format!("gateway answered {status}: {}", body.trim());
            }
            Ok((status, body)) => {
                return Err(format!("gateway answered {status}: {}", body.trim()));
            }
            Err(e) => last_err = e,
        }
        if attempt < attempts {
            let backoff = (backoff_ms << (attempt - 1)).min(2_000);
            std::thread::sleep(Duration::from_millis(backoff));
        }
    }
    Err(format!(
        "{attempts} attempts exhausted; last error: {last_err}"
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trainer::train_pge_resumable;
    use pge_graph::{DeltaOp, ProductGraph, TripleDelta};
    use std::net::TcpListener;

    fn tiny_dataset() -> Dataset {
        let mut g = ProductGraph::new();
        let mut train = Vec::new();
        for i in 0..24 {
            let (flavor, word) = if i % 2 == 0 {
                ("spicy", "hot")
            } else {
                ("sweet", "honey")
            };
            let title = format!("brand{i} {word} {flavor} snack chips {i}");
            train.push(g.add_fact(&title, "flavor", flavor));
        }
        Dataset::new(g, train, vec![], vec![])
    }

    fn tiny_cfg() -> PgeConfig {
        PgeConfig {
            epochs: 3,
            confidence_warmup: 1,
            ..PgeConfig::tiny()
        }
    }

    fn d(op: DeltaOp, t: &str, a: &str, v: &str) -> TripleDelta {
        TripleDelta {
            op,
            title: t.into(),
            attr: a.into(),
            value: v.into(),
        }
    }

    fn sample_windows() -> Vec<DeltaWindow> {
        vec![
            DeltaWindow {
                index: 0,
                ops: vec![
                    d(DeltaOp::Add, "newbrand hot spicy snack", "flavor", "spicy"),
                    d(
                        DeltaOp::Add,
                        "newbrand honey sweet snack",
                        "flavor",
                        "sweet",
                    ),
                    d(
                        DeltaOp::Retract,
                        "brand0 hot spicy snack chips 0",
                        "flavor",
                        "spicy",
                    ),
                ],
            },
            DeltaWindow {
                index: 1,
                ops: vec![d(
                    DeltaOp::Add,
                    "latebrand honey sweet wafer",
                    "flavor",
                    "sweet",
                )],
            },
        ]
    }

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("pge-incr-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// Base checkpoint in `dir` for warm starts.
    fn base_checkpoint(base: &Dataset, cfg: &PgeConfig, dir: &Path) {
        train_pge_resumable(base, cfg, None, Some(&CheckpointOptions::new(dir))).unwrap();
    }

    #[test]
    fn ingests_windows_and_checkpoints_each() {
        let base = tiny_dataset();
        let cfg = tiny_cfg();
        let dir = scratch_dir("ingest");
        base_checkpoint(&base, &cfg, &dir);
        let inc = IncrementalConfig::new(dir.join("snaps"));
        let out = train_incremental(
            &base,
            &sample_windows(),
            &cfg,
            &inc,
            &CheckpointOptions::new(&dir),
            None,
        )
        .unwrap();
        assert_eq!(out.windows_done, 2);
        assert_eq!(out.dataset.train.len(), base.train.len() + 3);
        assert_eq!(out.confidence.len(), out.dataset.train.len());
        // The retracted entry is masked and zero-confidence.
        assert!(!out.live[0]);
        assert_eq!(out.confidence.get(0), 0.0);
        for p in &out.snapshots {
            assert!(p.exists(), "missing snapshot {}", p.display());
        }
        let st = TrainerState::load_as(&dir, INCREMENTAL_CHECKPOINT_FILE).unwrap();
        assert_eq!(st.windows_done, 2);
        assert_eq!(st.delta_fingerprint, stream_fingerprint(&sample_windows()));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn warm_start_requires_a_base_checkpoint() {
        let base = tiny_dataset();
        let dir = scratch_dir("nobase");
        let inc = IncrementalConfig::new(dir.join("snaps"));
        let err = train_incremental(
            &base,
            &sample_windows(),
            &tiny_cfg(),
            &inc,
            &CheckpointOptions::new(&dir),
            None,
        )
        .unwrap_err();
        assert!(matches!(err, PersistError::Io(_)), "{err:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn edited_delta_stream_is_rejected_on_resume() {
        let base = tiny_dataset();
        let cfg = tiny_cfg();
        let dir = scratch_dir("editstream");
        base_checkpoint(&base, &cfg, &dir);
        let inc = IncrementalConfig::new(dir.join("snaps"));
        // Ingest window 0, simulate a kill.
        let mut stop = CheckpointOptions::new(&dir);
        stop.stop_after = Some(1);
        train_incremental(&base, &sample_windows(), &cfg, &inc, &stop, None).unwrap();
        // Resume against a stream whose ingested prefix was edited.
        let mut edited = sample_windows();
        edited[0].ops[0].value = "salty".into();
        let err = train_incremental(
            &base,
            &edited,
            &cfg,
            &inc,
            &CheckpointOptions::resume(&dir),
            None,
        )
        .unwrap_err();
        match err {
            PersistError::Mismatch(msg) => assert!(msg.contains("delta-stream"), "{msg}"),
            other => panic!("expected Mismatch, got {other:?}"),
        }
        // And a truncated stream (fewer windows than ingested).
        let err = train_incremental(
            &base,
            &sample_windows()[..0],
            &cfg,
            &inc,
            &CheckpointOptions::resume(&dir),
            None,
        )
        .unwrap_err();
        match err {
            PersistError::Mismatch(msg) => assert!(msg.contains("windows"), "{msg}"),
            other => panic!("expected Mismatch, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn push_snapshot_retries_busy_then_succeeds() {
        // A gateway stand-in: answers 503 (retryable), then 409
        // (busy), then 200 with a version.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let responses = [
                "HTTP/1.1 503 Service Unavailable\r\nContent-Length: 26\r\nConnection: close\r\n\r\n{\"error\": \"snapshot torn\"}",
                "HTTP/1.1 409 Conflict\r\nContent-Length: 20\r\nConnection: close\r\n\r\n{\"error\": \"reload\"}\n",
                "HTTP/1.1 200 OK\r\nContent-Length: 35\r\nConnection: close\r\n\r\n{\"swapped\": true, \"version\": 7}\n\n\n\n",
            ];
            for resp in responses {
                let (mut s, _) = listener.accept().unwrap();
                let mut buf = [0u8; 4096];
                let _ = s.read(&mut buf);
                s.write_all(resp.as_bytes()).unwrap();
            }
        });
        let report = push_snapshot(&addr, Path::new("/tmp/some snap.pgebin"), 5, 1).unwrap();
        assert_eq!(report.version, 7);
        assert_eq!(report.attempts, 3);
        server.join().unwrap();
    }

    #[test]
    fn push_snapshot_gives_up_after_bounded_attempts() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            for _ in 0..2 {
                let (mut s, _) = listener.accept().unwrap();
                let mut buf = [0u8; 4096];
                let _ = s.read(&mut buf);
                s.write_all(
                    b"HTTP/1.1 409 Conflict\r\nContent-Length: 2\r\nConnection: close\r\n\r\n{}",
                )
                .unwrap();
            }
        });
        let err = push_snapshot(&addr, Path::new("/tmp/x.pgebin"), 2, 1).unwrap_err();
        assert!(err.contains("2 attempts exhausted"), "{err}");
        assert!(err.contains("409"), "{err}");
        server.join().unwrap();
        // A hard error (404) does not consume retries.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            let mut buf = [0u8; 4096];
            let _ = s.read(&mut buf);
            s.write_all(
                b"HTTP/1.1 404 Not Found\r\nContent-Length: 2\r\nConnection: close\r\n\r\n{}",
            )
            .unwrap();
        });
        let err = push_snapshot(&addr, Path::new("/tmp/x.pgebin"), 5, 1).unwrap_err();
        assert!(err.contains("404"), "{err}");
        server.join().unwrap();
    }
}
