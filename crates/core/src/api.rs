//! The uniform interface every error-detection method implements.

use pge_graph::{ProductGraph, Triple};

/// An error-detection method: given a triple, produce a plausibility
/// score (higher = more likely correct). PGE and every baseline
/// implement this, so the evaluation harness ranks, thresholds, and
/// scores them identically.
pub trait ErrorDetector: Sync {
    /// Display name used in result tables.
    fn name(&self) -> String;

    /// Plausibility of one triple.
    fn plausibility(&self, graph: &ProductGraph, t: &Triple) -> f32;

    /// Plausibility of many triples; the default is a serial loop,
    /// overridden where batch inference is cheaper.
    fn plausibility_all(&self, graph: &ProductGraph, triples: &[Triple]) -> Vec<f32> {
        triples
            .iter()
            .map(|t| self.plausibility(graph, t))
            .collect()
    }

    /// `true` when scores are only meaningful batch-wise (e.g. rank
    /// fusion): [`plausibility_parallel`] then defers to
    /// [`ErrorDetector::plausibility_all`] instead of fanning out
    /// per-triple calls.
    fn prefers_batch(&self) -> bool {
        false
    }
}

/// Score `triples` in parallel across `threads` crossbeam workers.
/// Detectors expose `&self` inference, so sharing is free.
pub fn plausibility_parallel(
    det: &dyn ErrorDetector,
    graph: &ProductGraph,
    triples: &[Triple],
    threads: usize,
) -> Vec<f32> {
    let threads = threads.max(1);
    if threads == 1 || triples.len() < 64 || det.prefers_batch() {
        return det.plausibility_all(graph, triples);
    }
    let chunk = triples.len().div_ceil(threads);
    let mut out = vec![0.0; triples.len()];
    crossbeam::thread::scope(|s| {
        let mut rest: &mut [f32] = &mut out;
        let mut handles = Vec::new();
        for part in triples.chunks(chunk) {
            let (head, tail) = rest.split_at_mut(part.len());
            rest = tail;
            handles.push(s.spawn(move |_| {
                for (o, t) in head.iter_mut().zip(part) {
                    *o = det.plausibility(graph, t);
                }
            }));
        }
        for h in handles {
            h.join().expect("scoring worker panicked");
        }
    })
    .expect("crossbeam scope failed");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pge_graph::{AttrId, ProductId, ValueId};

    /// A detector scoring by value id (deterministic, cheap).
    struct Dummy;

    impl ErrorDetector for Dummy {
        fn name(&self) -> String {
            "dummy".into()
        }
        fn plausibility(&self, _g: &ProductGraph, t: &Triple) -> f32 {
            t.value.0 as f32
        }
    }

    fn graph_with(n: usize) -> (ProductGraph, Vec<Triple>) {
        let mut g = ProductGraph::new();
        let triples: Vec<Triple> = (0..n)
            .map(|i| g.add_fact(&format!("p{i}"), "a", &format!("v{i}")))
            .collect();
        (g, triples)
    }

    #[test]
    fn default_all_matches_single() {
        let (g, ts) = graph_with(10);
        let d = Dummy;
        let all = d.plausibility_all(&g, &ts);
        for (i, t) in ts.iter().enumerate() {
            assert_eq!(all[i], d.plausibility(&g, t));
        }
    }

    #[test]
    fn parallel_matches_serial() {
        let (g, ts) = graph_with(500);
        let d = Dummy;
        let serial = d.plausibility_all(&g, &ts);
        for threads in [1, 2, 4, 7] {
            let par = plausibility_parallel(&d, &g, &ts, threads);
            assert_eq!(par, serial, "threads={threads}");
        }
    }

    #[test]
    fn parallel_handles_small_input() {
        let (g, ts) = graph_with(3);
        let d = Dummy;
        assert_eq!(plausibility_parallel(&d, &g, &ts, 8), vec![0.0, 1.0, 2.0]);
        assert!(plausibility_parallel(&d, &g, &[], 4).is_empty());
        let _ = (ProductId(0), AttrId(0), ValueId(0));
    }
}
