//! Error detection on top of a trained model (§4.2): threshold
//! selection on validation accuracy, classification, and error
//! ranking.

use crate::api::{plausibility_parallel, ErrorDetector};
use crate::model::PgeModel;
use pge_graph::{LabeledTriple, ProductGraph, Triple};
use pge_obs::span;

impl ErrorDetector for PgeModel {
    fn name(&self) -> String {
        format!(
            "PGE({})-{}",
            self.encoder().kind().name(),
            self.scorer().kind.name()
        )
    }

    fn plausibility(&self, _graph: &ProductGraph, t: &Triple) -> f32 {
        self.score_triple(t)
    }
}

/// A thresholded classifier wrapping any [`ErrorDetector`].
pub struct Detector<'a, D: ErrorDetector> {
    pub method: &'a D,
    /// Triples with plausibility ≤ θ are classified incorrect.
    pub threshold: f32,
    /// Validation accuracy achieved at `threshold`.
    pub valid_accuracy: f32,
    threads: usize,
}

impl<'a, D: ErrorDetector> Detector<'a, D> {
    /// Fit the threshold θ that maximizes classification accuracy on
    /// the validation split (the paper's §4.2 protocol).
    pub fn fit(method: &'a D, graph: &ProductGraph, valid: &[LabeledTriple]) -> Self {
        Self::fit_with_threads(method, graph, valid, default_threads())
    }

    /// As [`Detector::fit`] with an explicit scoring thread count.
    pub fn fit_with_threads(
        method: &'a D,
        graph: &ProductGraph,
        valid: &[LabeledTriple],
        threads: usize,
    ) -> Self {
        let _s = span("detect.fit");
        let triples: Vec<Triple> = valid.iter().map(|lt| lt.triple).collect();
        let scores = plausibility_parallel(method, graph, &triples, threads);
        let pairs: Vec<(f32, bool)> = scores
            .iter()
            .zip(valid)
            .map(|(&s, lt)| (s, lt.correct))
            .collect();
        let (threshold, valid_accuracy) = best_threshold(&pairs);
        Detector {
            method,
            threshold,
            valid_accuracy,
            threads,
        }
    }

    /// Classify one triple: `true` = flagged as an error. A triple is
    /// an error when its plausibility is *not above* θ, so a NaN score
    /// (untrustworthy by definition) is flagged — matching the
    /// `score > θ` rule used for accuracy.
    pub fn is_error(&self, graph: &ProductGraph, t: &Triple) -> bool {
        let p = self.method.plausibility(graph, t);
        p.is_nan() || p <= self.threshold
    }

    /// Score a batch (parallel) and return plausibilities.
    pub fn scores(&self, graph: &ProductGraph, triples: &[Triple]) -> Vec<f32> {
        let _s = span("detect.score");
        plausibility_parallel(self.method, graph, triples, self.threads)
    }

    /// Rank triples most-suspicious first: returns indices into
    /// `triples` sorted by ascending plausibility (Table 6's
    /// "identified errors" listing).
    pub fn rank_errors(&self, graph: &ProductGraph, triples: &[Triple]) -> Vec<usize> {
        let scores = self.scores(graph, triples);
        let mut order: Vec<usize> = (0..triples.len()).collect();
        order.sort_by(|&a, &b| scores[a].total_cmp(&scores[b]));
        order
    }

    /// Test accuracy under the fitted threshold.
    pub fn accuracy(&self, graph: &ProductGraph, test: &[LabeledTriple]) -> f32 {
        if test.is_empty() {
            return 0.0;
        }
        let triples: Vec<Triple> = test.iter().map(|lt| lt.triple).collect();
        let scores = self.scores(graph, &triples);
        let hits = scores
            .iter()
            .zip(test)
            .filter(|(&s, lt)| (s > self.threshold) == lt.correct)
            .count();
        hits as f32 / test.len() as f32
    }
}

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get().min(8))
        .unwrap_or(1)
}

/// Accuracy-maximizing threshold over `(score, is_correct)` pairs
/// (same contract as `pge_eval::best_accuracy_threshold`, duplicated
/// here because `pge-core` stays independent of the eval crate).
fn best_threshold(pairs: &[(f32, bool)]) -> (f32, f32) {
    if pairs.is_empty() {
        return (0.0, 0.0);
    }
    // NaN scores never satisfy `score > θ` (always predicted
    // incorrect), so they add a constant to the accuracy and must be
    // excluded from the sweep — a NaN group would never advance the
    // dedup loop below (`NaN == NaN` is false) and `fit` used to hang.
    let nan_hits = pairs.iter().filter(|(s, c)| s.is_nan() && !*c).count() as f32;
    let n = pairs.len() as f32;
    let mut sorted: Vec<(f32, bool)> = pairs.iter().copied().filter(|(s, _)| !s.is_nan()).collect();
    if sorted.is_empty() {
        return (0.0, nan_hits / n);
    }
    sorted.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut hits = sorted.iter().filter(|(_, c)| *c).count() as f32 + nan_hits;
    let mut best_acc = hits / n;
    let mut best_theta = sorted[0].0 - 1.0;
    let mut i = 0;
    while i < sorted.len() {
        let s = sorted[i].0;
        while i < sorted.len() && sorted[i].0 == s {
            hits += if sorted[i].1 { -1.0 } else { 1.0 };
            i += 1;
        }
        let acc = hits / n;
        if acc > best_acc {
            best_acc = acc;
            best_theta = if i < sorted.len() {
                (s + sorted[i].0) / 2.0
            } else {
                s + 1.0
            };
        }
    }
    (best_theta, best_acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pge_graph::{AttrId, ProductId, ValueId};

    /// Plausibility = value id: small ids look like errors.
    struct ById;

    impl ErrorDetector for ById {
        fn name(&self) -> String {
            "by-id".into()
        }
        fn plausibility(&self, _g: &ProductGraph, t: &Triple) -> f32 {
            t.value.0 as f32
        }
    }

    fn graph() -> ProductGraph {
        let mut g = ProductGraph::new();
        for i in 0..20 {
            g.add_fact(&format!("p{i}"), "a", &format!("v{i}"));
        }
        g
    }

    fn labeled(range: std::ops::Range<u32>, correct_above: u32) -> Vec<LabeledTriple> {
        range
            .map(|i| LabeledTriple {
                triple: Triple::new(ProductId(i), AttrId(0), ValueId(i)),
                correct: i >= correct_above,
            })
            .collect()
    }

    #[test]
    fn fit_finds_separating_threshold() {
        let g = graph();
        // values 0..5 incorrect, 5..10 correct; perfectly separable.
        let valid = labeled(0..10, 5);
        let det = Detector::fit(&ById, &g, &valid);
        assert!((det.valid_accuracy - 1.0).abs() < 1e-6);
        assert!(det.threshold >= 4.0 && det.threshold < 5.0);
        assert!(det.is_error(&g, &valid[0].triple));
        assert!(!det.is_error(&g, &valid[9].triple));
    }

    #[test]
    fn rank_errors_orders_ascending_plausibility() {
        let g = graph();
        let triples: Vec<Triple> = (0..6u32)
            .rev()
            .map(|i| Triple::new(ProductId(i), AttrId(0), ValueId(i)))
            .collect();
        let det = Detector::fit(&ById, &g, &labeled(0..10, 5));
        let order = det.rank_errors(&g, &triples);
        // triples are in descending value order; rank must invert it.
        assert_eq!(order, vec![5, 4, 3, 2, 1, 0]);
    }

    #[test]
    fn accuracy_on_separable_test() {
        let g = graph();
        let det = Detector::fit(&ById, &g, &labeled(0..10, 5));
        let test = labeled(10..20, 10); // all correct, all above θ
        assert!((det.accuracy(&g, &test) - 1.0).abs() < 1e-6);
        assert_eq!(det.accuracy(&g, &[]), 0.0);
    }

    /// NaN for even value ids, the id itself otherwise.
    struct NanById;

    impl ErrorDetector for NanById {
        fn name(&self) -> String {
            "nan-by-id".into()
        }
        fn plausibility(&self, _g: &ProductGraph, t: &Triple) -> f32 {
            if t.value.0.is_multiple_of(2) {
                f32::NAN
            } else {
                t.value.0 as f32
            }
        }
    }

    #[test]
    fn fit_terminates_with_nan_plausibilities() {
        // Regression: a NaN score used to wedge the threshold sweep in
        // an infinite loop, hanging `fit` (and `pge eval` with it).
        let g = graph();
        let valid = labeled(0..10, 5);
        let det = Detector::fit(&NanById, &g, &valid);
        assert!(det.threshold.is_finite());
        assert!((0.0..=1.0).contains(&det.valid_accuracy));
        // NaN-scored and low-scored triples are flagged; a correct
        // high-scored one is not.
        assert!(det.is_error(&g, &valid[0].triple)); // NaN score
        assert!(det.is_error(&g, &valid[1].triple)); // score 1
        assert!(!det.is_error(&g, &valid[9].triple)); // score 9
    }

    #[test]
    fn model_name_for_reports() {
        // Covered more cheaply here than by training: the trait impl
        // formats like the paper's method labels.
        let _ = ById.name();
    }
}
