//! Text-encoder abstraction: CNN (the paper's choice) or the deep
//! BERT-style Transformer used in the scalability analysis (§4.6).

use pge_nn::{
    AdamHparams, CnnConfig, Embedding, TextCnnEncoder, TransformerConfig, TransformerEncoder,
};
use rand::Rng;

/// Which text encoder PGE uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EncoderKind {
    /// Shallow multi-width CNN (Fig. 4). Scales to large PGs.
    Cnn,
    /// Deep Transformer with [CLS] pooling. Reproduces the PGE(BERT)
    /// rows of Table 5 — far more expensive per token.
    Bert,
}

impl EncoderKind {
    pub fn name(self) -> &'static str {
        match self {
            EncoderKind::Cnn => "CNN",
            EncoderKind::Bert => "BERT",
        }
    }
}

/// A text encoder of either kind with the unified API the trainer
/// needs.
#[derive(Clone, Debug)]
pub enum TextEncoder {
    Cnn(TextCnnEncoder),
    Bert(TransformerEncoder),
}

/// Backward cache matching [`TextEncoder::forward`].
#[derive(Clone, Debug)]
pub enum EncCache {
    Cnn(pge_nn::conv::CnnEncCache),
    Bert(pge_nn::transformer::TransformerCache),
}

impl TextEncoder {
    /// Build a CNN encoder on pre-trained word embeddings.
    pub fn cnn<R: Rng>(rng: &mut R, cfg: CnnConfig, words: Embedding) -> Self {
        TextEncoder::Cnn(TextCnnEncoder::with_embeddings(rng, cfg, words))
    }

    /// Build a BERT-style encoder (owns its own token embeddings; the
    /// [CLS] pooling requires them to be trained jointly anyway).
    pub fn bert<R: Rng>(rng: &mut R, cfg: TransformerConfig) -> Self {
        TextEncoder::Bert(TransformerEncoder::new(rng, cfg))
    }

    pub fn kind(&self) -> EncoderKind {
        match self {
            TextEncoder::Cnn(_) => EncoderKind::Cnn,
            TextEncoder::Bert(_) => EncoderKind::Bert,
        }
    }

    pub fn out_dim(&self) -> usize {
        match self {
            TextEncoder::Cnn(e) => e.out_dim(),
            TextEncoder::Bert(e) => e.out_dim(),
        }
    }

    /// Inference-only encoding; `&self`, thread-safe.
    pub fn infer(&self, tokens: &[u32]) -> Vec<f32> {
        match self {
            TextEncoder::Cnn(e) => e.infer(tokens),
            TextEncoder::Bert(e) => e.infer(tokens),
        }
    }

    /// Training forward.
    pub fn forward(&self, tokens: &[u32]) -> (Vec<f32>, EncCache) {
        match self {
            TextEncoder::Cnn(e) => {
                let (out, c) = e.forward(tokens);
                (out, EncCache::Cnn(c))
            }
            TextEncoder::Bert(e) => {
                let (out, c) = e.forward(tokens);
                (out, EncCache::Bert(c))
            }
        }
    }

    /// Backward; cache must come from this encoder's `forward`.
    ///
    /// # Panics
    /// Panics when the cache kind does not match the encoder kind.
    pub fn backward(&mut self, cache: &EncCache, grad: &[f32]) {
        match (self, cache) {
            (TextEncoder::Cnn(e), EncCache::Cnn(c)) => e.backward(c, grad),
            (TextEncoder::Bert(e), EncCache::Bert(c)) => e.backward(c, grad),
            _ => panic!("encoder/cache kind mismatch"),
        }
    }

    pub fn adam_step(&mut self, hp: &AdamHparams, t: u64) {
        match self {
            TextEncoder::Cnn(e) => e.adam_step(hp, t),
            TextEncoder::Bert(e) => e.adam_step(hp, t),
        }
    }

    /// Approximate MACs for encoding `len` tokens (Table 5 analysis).
    pub fn flops(&self, len: usize) -> u64 {
        match self {
            TextEncoder::Cnn(e) => e.flops(len),
            TextEncoder::Bert(e) => e.flops(len),
        }
    }
}

impl pge_nn::gradcheck::HasParams for TextEncoder {
    fn params_mut(&mut self) -> Vec<&mut pge_nn::Param> {
        match self {
            TextEncoder::Cnn(e) => e.params_mut(),
            TextEncoder::Bert(e) => e.params_mut(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cnn_enc() -> TextEncoder {
        let mut rng = StdRng::seed_from_u64(1);
        let words = Embedding::new(&mut rng, 20, 8);
        TextEncoder::cnn(
            &mut rng,
            CnnConfig {
                vocab: 20,
                word_dim: 8,
                widths: vec![1, 2],
                filters_per_width: 4,
                out_dim: 6,
                max_len: 10,
            },
            words,
        )
    }

    #[test]
    fn unified_api_cnn() {
        let enc = cnn_enc();
        assert_eq!(enc.kind(), EncoderKind::Cnn);
        assert_eq!(enc.out_dim(), 6);
        let (e, _) = enc.forward(&[3, 4, 5]);
        assert_eq!(e, enc.infer(&[3, 4, 5]));
    }

    #[test]
    fn unified_api_bert() {
        let mut rng = StdRng::seed_from_u64(2);
        let enc = TextEncoder::bert(
            &mut rng,
            TransformerConfig {
                vocab: 20,
                dim: 8,
                heads: 2,
                layers: 1,
                ffn_dim: 12,
                max_len: 8,
            },
        );
        assert_eq!(enc.kind(), EncoderKind::Bert);
        let (e, _) = enc.forward(&[3, 4, 5]);
        assert_eq!(e, enc.infer(&[3, 4, 5]));
        assert_eq!(e.len(), 8);
    }

    #[test]
    #[should_panic(expected = "kind mismatch")]
    fn mismatched_cache_panics() {
        let mut rng = StdRng::seed_from_u64(3);
        let cnn = cnn_enc();
        let mut bert = TextEncoder::bert(
            &mut rng,
            TransformerConfig {
                vocab: 20,
                dim: 8,
                heads: 2,
                layers: 1,
                ffn_dim: 12,
                max_len: 8,
            },
        );
        let (_, cache) = cnn.forward(&[1, 2, 3]);
        bert.backward(&cache, &[0.0; 8]);
    }

    #[test]
    fn bert_flops_dominate_cnn() {
        let mut rng = StdRng::seed_from_u64(4);
        let cnn = cnn_enc();
        let bert = TextEncoder::bert(&mut rng, TransformerConfig::bert_style(20));
        assert!(bert.flops(16) > 10 * cnn.flops(16));
    }
}
