//! The PGE model (Fig. 3): text-based entity representations feeding
//! a KG-embedding scoring function, with learnable relation vectors.

use crate::encoder::TextEncoder;
use crate::score::Scorer;
use pge_graph::{AttrId, ProductGraph, Triple};
use pge_nn::Embedding;
use pge_text::{tokenize, tokenize_each, Vocab};

/// A trained (or in-training) PGE model.
///
/// Entities (titles and values) are *not* id-embedded: their vectors
/// are produced by the text encoder from their raw text, which is what
/// makes the model inductive (C2 of the paper). Relations are few and
/// closed-world, so they keep classic learnable vectors.
#[derive(Clone, Debug)]
pub struct PgeModel {
    /// Vocabulary built from the training corpus; unseen words map to
    /// `<unk>`.
    pub vocab: Vocab,
    pub(crate) encoder: TextEncoder,
    pub(crate) relations: Embedding,
    pub(crate) scorer: Scorer,
    /// Token-id cache for every product title in the graph.
    pub(crate) title_tokens: Vec<Vec<u32>>,
    /// Token-id cache for every value string in the graph.
    pub(crate) value_tokens: Vec<Vec<u32>>,
    /// Attribute names in id order, so raw-text facts can be scored
    /// without holding the graph (relations are closed-world).
    pub(crate) attr_names: Vec<String>,
    /// Optional out-of-core embedding bank (precomputed entity
    /// vectors served from a PGEBIN02 snapshot, usually mmapped).
    /// Consulted before the encoder in [`PgeModel::embed_text`]; rows
    /// are the exact bit patterns the encoder would produce, so the
    /// bank can change latency and residency but never a score.
    pub(crate) bank: Option<std::sync::Arc<pge_store::EmbeddingBank>>,
}

impl PgeModel {
    /// Assemble a model and precompute token caches for `graph`.
    pub fn new(
        vocab: Vocab,
        encoder: TextEncoder,
        relations: Embedding,
        scorer: Scorer,
        graph: &ProductGraph,
    ) -> Self {
        let title_tokens = (0..graph.num_products())
            .map(|i| vocab.encode(&tokenize(graph.title(pge_graph::ProductId(i as u32)))))
            .collect();
        let value_tokens = (0..graph.num_values())
            .map(|i| vocab.encode(&tokenize(graph.value_text(pge_graph::ValueId(i as u32)))))
            .collect();
        let attr_names = (0..graph.num_attrs())
            .map(|i| graph.attr_name(AttrId(i as u16)).to_string())
            .collect();
        PgeModel {
            vocab,
            encoder,
            relations,
            scorer,
            title_tokens,
            value_tokens,
            attr_names,
            bank: None,
        }
    }

    /// Extend the token caches to cover entities interned into `graph`
    /// after this model was built — how the incremental trainer keeps
    /// scoring a graph that grows one delta window at a time. Existing
    /// cache entries are untouched (ids are append-only), and new
    /// strings encode through the *frozen* vocabulary: unseen words
    /// map to `<unk>` exactly as they would at inference time.
    pub fn extend_token_caches(&mut self, graph: &ProductGraph) {
        for i in self.title_tokens.len()..graph.num_products() {
            self.title_tokens.push(
                self.vocab
                    .encode(&tokenize(graph.title(pge_graph::ProductId(i as u32)))),
            );
        }
        for i in self.value_tokens.len()..graph.num_values() {
            self.value_tokens.push(
                self.vocab
                    .encode(&tokenize(graph.value_text(pge_graph::ValueId(i as u32)))),
            );
        }
        for i in self.attr_names.len()..graph.num_attrs() {
            self.attr_names
                .push(graph.attr_name(AttrId(i as u16)).to_string());
        }
    }

    /// Attach an out-of-core embedding bank. Bank rows must have been
    /// computed by *this* model's encoder (the store loaders only
    /// attach a bank shipped in the same snapshot as the parameters,
    /// which guarantees it).
    pub fn attach_bank(&mut self, bank: std::sync::Arc<pge_store::EmbeddingBank>) {
        assert_eq!(
            bank.dim(),
            self.dim(),
            "bank dim {} does not match model dim {}",
            bank.dim(),
            self.dim()
        );
        self.bank = Some(bank);
    }

    /// The attached embedding bank, if any.
    pub fn bank(&self) -> Option<&std::sync::Arc<pge_store::EmbeddingBank>> {
        self.bank.as_ref()
    }

    /// Entity-embedding dimension.
    pub fn dim(&self) -> usize {
        self.encoder.out_dim()
    }

    /// The configured scorer.
    pub fn scorer(&self) -> Scorer {
        self.scorer
    }

    /// Borrow the text encoder.
    pub fn encoder(&self) -> &TextEncoder {
        &self.encoder
    }

    /// Final embedding of a product title (by graph id).
    pub fn title_embedding(&self, id: pge_graph::ProductId) -> Vec<f32> {
        self.encoder.infer(&self.title_tokens[id.0 as usize])
    }

    /// Final embedding of an attribute value (by graph id).
    pub fn value_embedding(&self, id: pge_graph::ValueId) -> Vec<f32> {
        self.encoder.infer(&self.value_tokens[id.0 as usize])
    }

    /// Relation vector of an attribute.
    pub fn relation(&self, a: AttrId) -> &[f32] {
        self.relations.row(a.0 as u32)
    }

    /// Plausibility score `f_a(t, v)` for a graph triple.
    pub fn score_triple(&self, t: &Triple) -> f32 {
        let h = self.title_embedding(t.product);
        let v = self.value_embedding(t.value);
        self.scorer.score(&h, self.relation(t.attr), &v)
    }

    /// Embed a piece of raw text (title or value) — tokenize, encode
    /// against the training vocabulary, and run the text encoder.
    pub fn embed_text(&self, text: &str) -> Vec<f32> {
        // A bank hit serves the precomputed row (bit-identical to the
        // encoder's output by construction) straight from the
        // snapshot backing — page cache instead of a CNN forward.
        if let Some(bank) = &self.bank {
            if let Some(row) = bank.lookup(text) {
                return row.to_vec();
            }
        }
        // Tokenize and encode in one streaming pass: same tokens in
        // the same order as `vocab.encode(&tokenize(text))`, without
        // allocating a `String` per token on the scan's miss path.
        let mut ids = Vec::with_capacity(16);
        tokenize_each(text, |tok| ids.push(self.vocab.get_or_unk(tok)));
        self.encoder.infer(&ids)
    }

    /// [`Self::embed_text`] bypassing the bank — always runs the
    /// encoder. `pge embed` builds banks with this (a bank row must
    /// come from the encoder, not from a previously attached bank),
    /// and bit-identity tests compare the two paths.
    pub fn embed_text_uncached(&self, text: &str) -> Vec<f32> {
        let mut ids = Vec::with_capacity(16);
        tokenize_each(text, |tok| ids.push(self.vocab.get_or_unk(tok)));
        self.encoder.infer(&ids)
    }

    /// Score a fact given *raw text* — the fully inductive entry
    /// point: neither the title nor the value needs to exist in the
    /// graph (unknown words fall back to `<unk>`).
    pub fn score_fact(&self, title: &str, attr: AttrId, value: &str) -> f32 {
        let h = self.embed_text(title);
        let v = self.embed_text(value);
        self.scorer.score(&h, self.relation(attr), &v)
    }

    /// Resolve an attribute by name (attributes are closed-world: a
    /// relation vector only exists for attributes seen in training).
    pub fn lookup_attr(&self, name: &str) -> Option<AttrId> {
        self.attr_names
            .iter()
            .position(|n| n == name)
            .map(|i| AttrId(i as u16))
    }

    /// Attribute names known to the model, in id order.
    pub fn attr_names(&self) -> &[String] {
        &self.attr_names
    }

    /// Fully text-level scoring: `(title, attribute name, value)`,
    /// none of which needs to exist in any graph. Returns `None` when
    /// the attribute is unknown — there is no relation vector to score
    /// against, which is different from an unknown *word* (those fall
    /// back to `<unk>`).
    pub fn score_text_triple(&self, title: &str, attr: &str, value: &str) -> Option<f32> {
        self.lookup_attr(attr)
            .map(|a| self.score_fact(title, a, value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::TextEncoder;
    use crate::score::{ScoreKind, Scorer};
    use pge_nn::CnnConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_model(graph: &ProductGraph) -> PgeModel {
        let mut vocab = Vocab::new();
        for i in 0..graph.num_products() {
            for w in tokenize(graph.title(pge_graph::ProductId(i as u32))) {
                vocab.add(&w);
            }
        }
        for i in 0..graph.num_values() {
            for w in tokenize(graph.value_text(pge_graph::ValueId(i as u32))) {
                vocab.add(&w);
            }
        }
        let mut rng = StdRng::seed_from_u64(1);
        let words = pge_nn::Embedding::new(&mut rng, vocab.len(), 8);
        let enc = TextEncoder::cnn(
            &mut rng,
            CnnConfig {
                vocab: vocab.len(),
                word_dim: 8,
                widths: vec![1, 2],
                filters_per_width: 4,
                out_dim: 6,
                max_len: 12,
            },
            words,
        );
        let scorer = Scorer::new(ScoreKind::TransE, 4.0);
        let relations =
            pge_nn::Embedding::new_xavier(&mut rng, graph.num_attrs(), scorer.rel_dim(6));
        PgeModel::new(vocab, enc, relations, scorer, graph)
    }

    fn tiny_graph() -> ProductGraph {
        let mut g = ProductGraph::new();
        g.add_fact("spicy tortilla chips", "flavor", "spicy queso");
        g.add_fact("sweet honey granola", "flavor", "honey");
        g
    }

    #[test]
    fn score_triple_is_deterministic_and_finite() {
        let g = tiny_graph();
        let m = tiny_model(&g);
        let t = g.triples()[0];
        let a = m.score_triple(&t);
        let b = m.score_triple(&t);
        assert_eq!(a, b);
        assert!(a.is_finite());
    }

    #[test]
    fn score_fact_matches_score_triple_for_known_text() {
        let g = tiny_graph();
        let m = tiny_model(&g);
        let t = g.triples()[0];
        let via_text = m.score_fact("spicy tortilla chips", t.attr, "spicy queso");
        assert!((via_text - m.score_triple(&t)).abs() < 1e-6);
    }

    #[test]
    fn unseen_words_fall_back_to_unk() {
        let g = tiny_graph();
        let m = tiny_model(&g);
        let t = g.triples()[0];
        // Fully unseen title: encoder still produces a finite score.
        let f = m.score_fact("zzz qqq www", t.attr, "spicy queso");
        assert!(f.is_finite());
        // And it equals scoring the literal unk sequence.
        let f2 = m.score_fact("unkish bogus trio", t.attr, "spicy queso");
        assert!((f - f2).abs() < 1e-6, "pure-unk sequences must agree");
    }

    #[test]
    fn score_text_triple_resolves_attrs_by_name() {
        let g = tiny_graph();
        let m = tiny_model(&g);
        let t = g.triples()[0];
        let by_name = m
            .score_text_triple("spicy tortilla chips", "flavor", "spicy queso")
            .unwrap();
        assert_eq!(
            by_name,
            m.score_fact("spicy tortilla chips", t.attr, "spicy queso")
        );
        assert_eq!(m.score_text_triple("x", "no-such-attr", "y"), None);
        assert_eq!(m.attr_names(), &["flavor".to_string()]);
    }

    #[test]
    fn embeddings_have_declared_dim() {
        let g = tiny_graph();
        let m = tiny_model(&g);
        assert_eq!(m.title_embedding(pge_graph::ProductId(0)).len(), m.dim());
        assert_eq!(m.value_embedding(pge_graph::ValueId(0)).len(), m.dim());
    }
}
