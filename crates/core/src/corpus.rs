//! Training-corpus construction shared by PGE and the text-aware
//! baselines.
//!
//! Models may only see text reachable from their *training* triples;
//! unseen test words then honestly map to `<unk>` in the inductive
//! evaluation.

use pge_graph::{ProductGraph, Triple};
use pge_text::{tokenize, Vocab};

/// A tokenized training corpus: vocabulary plus one sentence per
/// training triple (`title ++ attribute ++ value` token ids). The
/// sentences double as word2vec training data.
#[derive(Clone, Debug)]
pub struct Corpus {
    pub vocab: Vocab,
    pub sentences: Vec<Vec<u32>>,
}

/// Build the corpus for a set of training triples.
pub fn build_corpus(graph: &ProductGraph, triples: &[Triple]) -> Corpus {
    let mut vocab = Vocab::new();
    let mut sentences = Vec::with_capacity(triples.len());
    let mut title_tok: Vec<Option<Vec<u32>>> = vec![None; graph.num_products()];
    let mut value_tok: Vec<Option<Vec<u32>>> = vec![None; graph.num_values()];
    let mut attr_tok: Vec<Option<Vec<u32>>> = vec![None; graph.num_attrs()];
    for t in triples {
        let ti = t.product.0 as usize;
        if title_tok[ti].is_none() {
            title_tok[ti] = Some(
                tokenize(graph.title(t.product))
                    .iter()
                    .map(|w| vocab.add(w))
                    .collect(),
            );
        }
        let ai = t.attr.0 as usize;
        if attr_tok[ai].is_none() {
            attr_tok[ai] = Some(
                tokenize(graph.attr_name(t.attr))
                    .iter()
                    .map(|w| vocab.add(w))
                    .collect(),
            );
        }
        let vi = t.value.0 as usize;
        if value_tok[vi].is_none() {
            value_tok[vi] = Some(
                tokenize(graph.value_text(t.value))
                    .iter()
                    .map(|w| vocab.add(w))
                    .collect(),
            );
        }
        let mut sent = title_tok[ti].clone().unwrap_or_default();
        sent.extend(attr_tok[ai].iter().flatten());
        sent.extend(value_tok[vi].iter().flatten());
        sentences.push(sent);
    }
    Corpus { vocab, sentences }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vocab_limited_to_given_triples() {
        let mut g = ProductGraph::new();
        let t0 = g.add_fact("spicy tortilla chips", "flavor", "spicy queso");
        let _t1 = g.add_fact("mystery snack", "flavor", "enigma berry");
        let c = build_corpus(&g, &[t0]);
        assert!(c.vocab.get("spicy").is_some());
        assert!(c.vocab.get("mystery").is_none());
        assert_eq!(c.sentences.len(), 1);
    }

    #[test]
    fn sentence_layout() {
        let mut g = ProductGraph::new();
        let t = g.add_fact("tortilla chips", "flavor", "spicy queso");
        let c = build_corpus(&g, &[t]);
        let words: Vec<&str> = c.sentences[0].iter().map(|&id| c.vocab.word(id)).collect();
        assert_eq!(words, vec!["tortilla", "chips", "flavor", "spicy", "queso"]);
    }
}
