//! PGE: robust product-graph embedding learning for error detection.
//!
//! This crate implements the paper's contribution end to end:
//!
//! * [`score`] — KG-embedding scoring functions `f_a(t, v)` (TransE,
//!   RotatE, DistMult, ComplEx) with analytic gradients;
//! * [`encoder`] — the text encoder abstraction (CNN per the paper's
//!   Fig. 4, or the BERT-style Transformer of the scalability study);
//! * [`model`] — [`model::PgeModel`]: text-based entity
//!   representations projected into the triple structure, plus
//!   learnable relation embeddings (Fig. 3);
//! * [`confidence`] — the noise-aware mechanism of §3.3: a learnable
//!   confidence score per training triple with the relaxed
//!   polarization objective of Eq. (6);
//! * [`trainer`] — the end-to-end training loop: word2vec
//!   initialization, negative sampling (Eq. 3), noise-aware weighting
//!   (Eq. 6), Adam;
//! * [`detector`] — scoring, validation-threshold classification
//!   (§4.2), and error ranking, with multi-threaded inference;
//! * [`api`] — the [`api::ErrorDetector`] trait every method
//!   (PGE and all baselines) implements, so the evaluation harness
//!   treats them uniformly.

pub mod api;
pub mod cache;
pub mod checkpoint;
pub mod confidence;
pub mod corpus;
pub mod detector;
pub mod encoder;
pub mod incremental;
pub mod model;
pub mod persist;
pub mod score;
pub mod trainer;

pub use api::ErrorDetector;
pub use cache::{CachedModel, EmbeddingCache, EmbeddingProvider, ScoreScratch};
pub use checkpoint::{
    config_hash, data_fingerprint, CheckpointOptions, TrainerState, CHECKPOINT_FILE,
    CHECKPOINT_MAGIC,
};
pub use confidence::{ConfidenceBackend, ConfidenceSignal, ConfidenceStore, ConfidenceUpdater};
pub use detector::Detector;
pub use encoder::{EncoderKind, TextEncoder};
pub use incremental::{
    push_snapshot, train_incremental, IncrementalConfig, IncrementalOutcome, PushReport,
    INCREMENTAL_CHECKPOINT_FILE,
};
pub use model::PgeModel;
pub use persist::{
    load_model, load_model_auto, load_model_auto_path, load_model_binary, load_model_store,
    model_from_snapshot, save_model, save_model_binary, save_model_store, write_model_sections,
    PersistError, BINARY_MAGIC, BINARY_MAGIC2,
};
pub use score::{PreparedRelation, ScoreKind, Scorer};
pub use trainer::{
    resolve_threads, train_pge, train_pge_resumable, train_pge_with_log, PgeConfig, TrainedPge,
    GRAD_LANES,
};
