//! KG-embedding scoring functions `f_a(t, v)` and their gradients.
//!
//! The paper plugs standard scoring functions into its objective
//! (Eq. 2): "f_a(t,v) can be defined by any KG embedding scoring
//! function", and evaluates TransE and RotatE variants of PGE.
//! DistMult and ComplEx are implemented as well for the baseline
//! suite. Higher scores mean more plausible triples.
//!
//! The distance reductions run on the kernel-dispatched blocked
//! implementations in [`pge_tensor::kernels`] (scalar reference or
//! AVX2 `f32x8`, bit-identical either way). Relations are few and
//! closed-world, so bulk paths (scan, serve) can amortize the
//! per-relation trigonometry: [`Scorer::prepare`] caches RotatE's
//! `sin/cos` arrays once, and [`PreparedRelation::score`] is then
//! bit-identical to [`Scorer::score`] — both feed the same kernels
//! the same inputs.

use pge_tensor::kernels;

/// Which scoring function to use.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScoreKind {
    /// `γ − ‖h + r − t‖₁` (Bordes et al., 2013).
    TransE,
    /// `γ − Σᵢ |h∘r − t|ᵢ` over ℂ^{d/2} with unit-modulus relation
    /// rotations (Sun et al., 2019).
    RotatE,
    /// `Σᵢ hᵢ rᵢ tᵢ` (Yang et al., 2014).
    DistMult,
    /// `Re(Σᵢ hᵢ rᵢ conj(t)ᵢ)` over ℂ^{d/2} (Trouillon et al., 2016).
    ComplEx,
}

impl ScoreKind {
    /// Human-readable name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            ScoreKind::TransE => "TransE",
            ScoreKind::RotatE => "RotatE",
            ScoreKind::DistMult => "DistMult",
            ScoreKind::ComplEx => "ComplEx",
        }
    }
}

/// Small fuzz keeping the RotatE modulus differentiable at 0.
const MOD_EPS: f32 = 1e-9;

/// A configured scoring function.
#[derive(Clone, Copy, Debug)]
pub struct Scorer {
    pub kind: ScoreKind,
    /// Margin γ of the distance-based scorers (ignored by DistMult and
    /// ComplEx). The paper sweeps {12, 24}; our rescaled embeddings
    /// train well with γ around 4–12.
    pub gamma: f32,
}

impl Scorer {
    pub fn new(kind: ScoreKind, gamma: f32) -> Self {
        Scorer { kind, gamma }
    }

    /// Relation-parameter dimension for a given entity dimension.
    ///
    /// # Panics
    /// Panics when `ent_dim` is odd but the scorer is complex-valued.
    pub fn rel_dim(&self, ent_dim: usize) -> usize {
        match self.kind {
            ScoreKind::TransE | ScoreKind::DistMult => ent_dim,
            ScoreKind::RotatE => {
                assert!(ent_dim.is_multiple_of(2), "RotatE needs an even entity dim");
                ent_dim / 2
            }
            ScoreKind::ComplEx => {
                assert!(
                    ent_dim.is_multiple_of(2),
                    "ComplEx needs an even entity dim"
                );
                ent_dim
            }
        }
    }

    /// Plausibility score `f_a(h, t)`.
    ///
    /// Complex-valued scorers treat entity vectors as `[re.. , im..]`
    /// split halves.
    pub fn score(&self, h: &[f32], r: &[f32], t: &[f32]) -> f32 {
        debug_assert_eq!(h.len(), t.len());
        debug_assert_eq!(r.len(), self.rel_dim(h.len()));
        match self.kind {
            ScoreKind::TransE => self.gamma - kernels::l1_dist3(h, r, t),
            ScoreKind::RotatE => {
                let m = h.len() / 2;
                let (h_re, h_im) = h.split_at(m);
                let (t_re, t_im) = t.split_at(m);
                // Spell the rotation out as sin/cos arrays so the
                // one-shot path feeds the exact same kernel as the
                // prepared (cached-trig) path; a stack buffer covers
                // every realistic entity dimension without allocating.
                let mut sin_buf = [0.0f32; 64];
                let mut cos_buf = [0.0f32; 64];
                let heap: (Vec<f32>, Vec<f32>);
                let (sin, cos): (&[f32], &[f32]) = if m <= 64 {
                    for i in 0..m {
                        let (s, c) = r[i].sin_cos();
                        sin_buf[i] = s;
                        cos_buf[i] = c;
                    }
                    (&sin_buf[..m], &cos_buf[..m])
                } else {
                    heap = r.iter().map(|x| x.sin_cos()).unzip();
                    (&heap.0, &heap.1)
                };
                self.gamma - kernels::rotate_dist(h_re, h_im, sin, cos, t_re, t_im, MOD_EPS)
            }
            ScoreKind::DistMult => kernels::dot3(h, r, t),
            ScoreKind::ComplEx => complex_score(h, r, t),
        }
    }

    /// Cache the per-relation work (RotatE's trigonometry, a copy of
    /// the relation vector) for scoring many `(h, t)` pairs against
    /// one attribute. [`PreparedRelation::score`] is bit-identical to
    /// [`Scorer::score`] on the same inputs.
    pub fn prepare(&self, r: &[f32]) -> PreparedRelation {
        let (sin, cos) = match self.kind {
            ScoreKind::RotatE => r.iter().map(|x| x.sin_cos()).unzip(),
            _ => (Vec::new(), Vec::new()),
        };
        PreparedRelation {
            scorer: *self,
            r: r.to_vec(),
            sin,
            cos,
        }
    }

    /// Accumulate `df · ∂f/∂{h,r,t}` into the gradient slices.
    // Three inputs + three gradient outputs is the signature of the
    // math; bundling them into structs would add copies on a hot path.
    #[allow(clippy::too_many_arguments)]
    pub fn backward(
        &self,
        h: &[f32],
        r: &[f32],
        t: &[f32],
        df: f32,
        dh: &mut [f32],
        dr: &mut [f32],
        dt: &mut [f32],
    ) {
        match self.kind {
            ScoreKind::TransE => {
                for i in 0..h.len() {
                    let s = (h[i] + r[i] - t[i]).signum();
                    // f = γ − Σ|·| ⇒ ∂f/∂h = −sign
                    dh[i] += -df * s;
                    dr[i] += -df * s;
                    dt[i] += df * s;
                }
            }
            ScoreKind::RotatE => {
                let m = h.len() / 2;
                let (h_re, h_im) = h.split_at(m);
                let (t_re, t_im) = t.split_at(m);
                let (dh_re, dh_im) = dh.split_at_mut(m);
                let (dt_re, dt_im) = dt.split_at_mut(m);
                for i in 0..m {
                    let (sin, cos) = r[i].sin_cos();
                    let hr_re = h_re[i] * cos - h_im[i] * sin;
                    let hr_im = h_re[i] * sin + h_im[i] * cos;
                    let dre = hr_re - t_re[i];
                    let dim = hr_im - t_im[i];
                    let modl = (dre * dre + dim * dim + MOD_EPS).sqrt();
                    // f = γ − Σ mod ⇒ ∂f/∂dre = −dre/mod etc.
                    let gre = -df * dre / modl;
                    let gim = -df * dim / modl;
                    // Chain through the rotation.
                    dh_re[i] += gre * cos + gim * sin;
                    dh_im[i] += -gre * sin + gim * cos;
                    dt_re[i] += -gre;
                    dt_im[i] += -gim;
                    // ∂hr_re/∂θ = −h_re sin − h_im cos = −hr_im;
                    // ∂hr_im/∂θ = h_re cos − h_im sin = hr_re.
                    dr[i] += gre * (-hr_im) + gim * hr_re;
                }
            }
            ScoreKind::DistMult => {
                for i in 0..h.len() {
                    dh[i] += df * r[i] * t[i];
                    dr[i] += df * h[i] * t[i];
                    dt[i] += df * h[i] * r[i];
                }
            }
            ScoreKind::ComplEx => {
                let m = h.len() / 2;
                let (h_re, h_im) = h.split_at(m);
                let (t_re, t_im) = t.split_at(m);
                let (r_re, r_im) = r.split_at(m);
                let (dh_re, dh_im) = dh.split_at_mut(m);
                let (dt_re, dt_im) = dt.split_at_mut(m);
                let (dr_re, dr_im) = dr.split_at_mut(m);
                for i in 0..m {
                    dh_re[i] += df * (r_re[i] * t_re[i] + r_im[i] * t_im[i]);
                    dh_im[i] += df * (-r_im[i] * t_re[i] + r_re[i] * t_im[i]);
                    dr_re[i] += df * (h_re[i] * t_re[i] + h_im[i] * t_im[i]);
                    dr_im[i] += df * (-h_im[i] * t_re[i] + h_re[i] * t_im[i]);
                    dt_re[i] += df * (h_re[i] * r_re[i] - h_im[i] * r_im[i]);
                    dt_im[i] += df * (h_re[i] * r_im[i] + h_im[i] * r_re[i]);
                }
            }
        }
    }
}

/// Shared ComplEx reduction `Re(Σ h·r·conj(t))`; blocked like the
/// `pge_tensor::kernels` reductions so both the one-shot and prepared
/// scoring paths run this exact code (scalar only — ComplEx is not on
/// the bulk-scan hot path).
fn complex_score(h: &[f32], r: &[f32], t: &[f32]) -> f32 {
    let m = h.len() / 2;
    let (h_re, h_im) = h.split_at(m);
    let (t_re, t_im) = t.split_at(m);
    let (r_re, r_im) = r.split_at(m);
    let mut s = 0.0;
    for i in 0..m {
        // Re( h · r · conj(t) )
        s += (h_re[i] * r_re[i] - h_im[i] * r_im[i]) * t_re[i]
            + (h_re[i] * r_im[i] + h_im[i] * r_re[i]) * t_im[i];
    }
    s
}

/// A relation vector pre-processed for repeated scoring: bulk paths
/// (scan, serve) score millions of `(h, t)` pairs against a handful
/// of closed-world attributes, and RotatE's per-dimension `sin_cos`
/// was a measurable slice of that hot loop. Build once per attribute
/// via [`Scorer::prepare`].
#[derive(Clone, Debug)]
pub struct PreparedRelation {
    scorer: Scorer,
    r: Vec<f32>,
    /// RotatE only: the rotation as precomputed sin/cos; empty
    /// otherwise.
    sin: Vec<f32>,
    cos: Vec<f32>,
}

impl PreparedRelation {
    /// Plausibility score — bit-identical to
    /// [`Scorer::score`]`(h, r, t)` for the prepared `r`.
    #[inline]
    pub fn score(&self, h: &[f32], t: &[f32]) -> f32 {
        match self.scorer.kind {
            ScoreKind::RotatE => {
                let m = h.len() / 2;
                let (h_re, h_im) = h.split_at(m);
                let (t_re, t_im) = t.split_at(m);
                self.scorer.gamma
                    - kernels::rotate_dist(h_re, h_im, &self.sin, &self.cos, t_re, t_im, MOD_EPS)
            }
            _ => self.scorer.score(h, &self.r, t),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pge_nn::gradcheck;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    const ALL: [ScoreKind; 4] = [
        ScoreKind::TransE,
        ScoreKind::RotatE,
        ScoreKind::DistMult,
        ScoreKind::ComplEx,
    ];

    fn rand_vec(rng: &mut StdRng, n: usize) -> Vec<f32> {
        (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect()
    }

    #[test]
    fn transe_exact_value() {
        let s = Scorer::new(ScoreKind::TransE, 5.0);
        // h + r − t = [0.5, −1.0]; L1 = 1.5; f = 3.5.
        let f = s.score(&[1.0, 0.0], &[0.5, 1.0], &[1.0, 2.0]);
        assert!((f - 3.5).abs() < 1e-6);
    }

    #[test]
    fn rotate_perfect_rotation_scores_gamma() {
        let s = Scorer::new(ScoreKind::RotatE, 4.0);
        // h = 1 + 0i, θ = π/2 ⇒ h∘r = 0 + 1i = t exactly.
        let h = [1.0, 0.0]; // [re, im] with m = 1
        let t = [0.0, 1.0];
        let r = [std::f32::consts::FRAC_PI_2];
        let f = s.score(&h, &r, &t);
        assert!((f - 4.0).abs() < 1e-3, "f={f}");
    }

    #[test]
    fn distmult_is_symmetric_in_h_t() {
        let s = Scorer::new(ScoreKind::DistMult, 0.0);
        let mut rng = StdRng::seed_from_u64(1);
        let h = rand_vec(&mut rng, 6);
        let r = rand_vec(&mut rng, 6);
        let t = rand_vec(&mut rng, 6);
        assert!((s.score(&h, &r, &t) - s.score(&t, &r, &h)).abs() < 1e-5);
    }

    #[test]
    fn complex_is_asymmetric() {
        let s = Scorer::new(ScoreKind::ComplEx, 0.0);
        let mut rng = StdRng::seed_from_u64(2);
        let h = rand_vec(&mut rng, 6);
        let r = rand_vec(&mut rng, 6);
        let t = rand_vec(&mut rng, 6);
        assert!((s.score(&h, &r, &t) - s.score(&t, &r, &h)).abs() > 1e-4);
    }

    #[test]
    fn rel_dims() {
        let d = 8;
        assert_eq!(Scorer::new(ScoreKind::TransE, 1.0).rel_dim(d), 8);
        assert_eq!(Scorer::new(ScoreKind::RotatE, 1.0).rel_dim(d), 4);
        assert_eq!(Scorer::new(ScoreKind::DistMult, 1.0).rel_dim(d), 8);
        assert_eq!(Scorer::new(ScoreKind::ComplEx, 1.0).rel_dim(d), 8);
    }

    #[test]
    #[should_panic(expected = "even entity dim")]
    fn rotate_rejects_odd_dim() {
        Scorer::new(ScoreKind::RotatE, 1.0).rel_dim(7);
    }

    #[test]
    fn gradcheck_all_scorers() {
        for kind in ALL {
            let s = Scorer::new(kind, 3.0);
            let mut rng = StdRng::seed_from_u64(11);
            let d = 6;
            let h = rand_vec(&mut rng, d);
            let r = rand_vec(&mut rng, s.rel_dim(d));
            let t = rand_vec(&mut rng, d);
            let mut dh = vec![0.0; d];
            let mut dr = vec![0.0; r.len()];
            let mut dt = vec![0.0; d];
            s.backward(&h, &r, &t, 1.0, &mut dh, &mut dr, &mut dt);

            let nh = gradcheck::numeric_input_grad(&h, |x| s.score(x, &r, &t));
            let nr = gradcheck::numeric_input_grad(&r, |x| s.score(&h, x, &t));
            let nt = gradcheck::numeric_input_grad(&t, |x| s.score(&h, &r, x));
            // TransE's |·| is non-smooth at 0; random inputs keep us
            // away from kinks.
            gradcheck::assert_close(&dh, &nh, 2e-2, &format!("{kind:?} dh"));
            gradcheck::assert_close(&dr, &nr, 2e-2, &format!("{kind:?} dr"));
            gradcheck::assert_close(&dt, &nt, 2e-2, &format!("{kind:?} dt"));
        }
    }

    #[test]
    fn prepared_relation_bit_identical_to_one_shot() {
        let mut rng = StdRng::seed_from_u64(21);
        for kind in ALL {
            let s = Scorer::new(kind, 6.0);
            let d = 32; // the default entity dim: exercises full blocks
            let r = rand_vec(&mut rng, s.rel_dim(d));
            let prep = s.prepare(&r);
            for kernel in [pge_tensor::Kernel::Scalar, pge_tensor::Kernel::Simd] {
                pge_tensor::set_kernel(Some(kernel));
                for _ in 0..50 {
                    let h = rand_vec(&mut rng, d);
                    let t = rand_vec(&mut rng, d);
                    assert_eq!(
                        s.score(&h, &r, &t).to_bits(),
                        prep.score(&h, &t).to_bits(),
                        "{kind:?} prepared path diverged under {kernel:?}"
                    );
                }
            }
            pge_tensor::set_kernel(None);
        }
    }

    #[test]
    fn backward_accumulates_not_overwrites() {
        let s = Scorer::new(ScoreKind::DistMult, 0.0);
        let h = [1.0, 2.0];
        let r = [1.0, 1.0];
        let t = [3.0, 4.0];
        let mut dh = vec![10.0, 10.0];
        let mut dr = vec![0.0, 0.0];
        let mut dt = vec![0.0, 0.0];
        s.backward(&h, &r, &t, 1.0, &mut dh, &mut dr, &mut dt);
        assert_eq!(dh, vec![13.0, 14.0]); // 10 + r*t
    }

    #[test]
    fn corrupted_triples_score_lower_after_gradient_steps() {
        // One manual SGD step should raise f(pos) and lower f(neg).
        for kind in ALL {
            let s = Scorer::new(kind, 3.0);
            let mut rng = StdRng::seed_from_u64(5);
            let d = 8;
            let mut h = rand_vec(&mut rng, d);
            let mut r = rand_vec(&mut rng, s.rel_dim(d));
            let mut t = rand_vec(&mut rng, d);
            let before = s.score(&h, &r, &t);
            for _ in 0..20 {
                let mut dh = vec![0.0; d];
                let mut dr = vec![0.0; r.len()];
                let mut dt = vec![0.0; d];
                // Maximize f: ascend.
                s.backward(&h, &r, &t, 1.0, &mut dh, &mut dr, &mut dt);
                for i in 0..d {
                    h[i] += 0.05 * dh[i];
                    t[i] += 0.05 * dt[i];
                }
                for i in 0..r.len() {
                    r[i] += 0.05 * dr[i];
                }
            }
            let after = s.score(&h, &r, &t);
            assert!(after > before, "{kind:?}: {before} -> {after}");
        }
    }
}
