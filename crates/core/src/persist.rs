//! Model persistence: save a trained PGE model to a text artifact and
//! reload it elsewhere.
//!
//! A production catalog pipeline trains once and scores continuously;
//! this module is the hand-off. Two formats share one header:
//!
//! * **text** ([`save_model`]/[`load_model`]) — line-oriented, with
//!   parameters stored as lossless `f32` bit patterns (hex); good for
//!   diffing and debugging;
//! * **binary** ([`save_model_binary`]) — `PGEBIN01` magic, a CRC-32
//!   over the payload, the same text header, then raw little-endian
//!   `f32` parameter blocks; ~2.3× smaller and checksummed, so a
//!   truncated or bit-flipped snapshot is rejected at load instead of
//!   silently scoring wrong.
//!
//! [`load_model_auto`] sniffs the magic and dispatches, so every
//! consumer (`pge detect/eval/serve/scan`) accepts either format.
//! Both reload *bit-identically*: a text round-trip and a binary
//! round-trip produce byte-equal parameters.
//!
//! Only the CNN encoder variant is persisted — it is the paper's
//! deployed configuration (the BERT variant exists for the Table-5
//! scalability contrast, not for deployment).

use crate::encoder::TextEncoder;
use crate::model::PgeModel;
use crate::score::{ScoreKind, Scorer};
use pge_graph::ProductGraph;
use pge_nn::gradcheck::HasParams;
use pge_nn::{CnnConfig, Embedding};
use pge_text::Vocab;
use std::fmt::Write as _;

/// Persistence failures.
#[derive(Debug)]
pub enum PersistError {
    /// Only CNN-encoder models can be saved.
    UnsupportedEncoder,
    /// Parse failure with line number and message.
    Parse(usize, String),
    /// A binary snapshot failed structural or checksum validation.
    Corrupt(String),
    /// An I/O failure while reading or durably writing a snapshot or
    /// training checkpoint.
    Io(String),
    /// A training checkpoint refers to a different config or corpus
    /// than the one being resumed against.
    Mismatch(String),
    /// The file matches none of the known model formats (PGEBIN01,
    /// PGEBIN02, `#pge-model` text). Carries the leading bytes seen,
    /// so "you pointed me at the wrong file" reads as exactly that
    /// instead of as a parse error from whichever format was tried
    /// last.
    UnknownFormat(String),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::UnsupportedEncoder => {
                write!(f, "only PGE(CNN) models support persistence")
            }
            PersistError::Parse(line, msg) => write!(f, "parse error at line {line}: {msg}"),
            PersistError::Corrupt(msg) => write!(f, "corrupt model snapshot: {msg}"),
            PersistError::Io(msg) => write!(f, "snapshot I/O error: {msg}"),
            PersistError::Mismatch(msg) => write!(f, "checkpoint mismatch: {msg}"),
            PersistError::UnknownFormat(msg) => {
                write!(f, "unrecognized model format: {msg}")
            }
        }
    }
}

impl std::error::Error for PersistError {}

fn write_param_values(out: &mut String, values: &[f32]) {
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            out.push(' ');
        }
        let _ = write!(out, "{:08x}", v.to_bits());
    }
    out.push('\n');
}

/// The shared header: everything up to and including the `params N`
/// line. Both the text and binary formats start with exactly this.
fn header_text(model: &PgeModel, n_params: usize) -> Result<String, PersistError> {
    let cnn = match &model.encoder {
        TextEncoder::Cnn(c) => c,
        TextEncoder::Bert(_) => return Err(PersistError::UnsupportedEncoder),
    };
    let cfg = cnn.config();
    let scorer = model.scorer;
    let mut out = String::new();
    let _ = writeln!(out, "#pge-model v1");
    let _ = writeln!(
        out,
        "scorer {} {}",
        scorer.kind.name().to_lowercase(),
        scorer.gamma
    );
    let widths: Vec<String> = cfg.widths.iter().map(|w| w.to_string()).collect();
    let _ = writeln!(
        out,
        "cnn {} {} {} {} {} {}",
        cfg.vocab,
        cfg.word_dim,
        cfg.filters_per_width,
        cfg.out_dim,
        cfg.max_len,
        widths.join(",")
    );
    let _ = writeln!(out, "relations {}", model.relations.len());
    let _ = writeln!(out, "vocab {}", model.vocab.len());
    for w in model.vocab.words() {
        let _ = writeln!(out, "{w}");
    }
    let _ = writeln!(out, "params {n_params}");
    Ok(out)
}

/// Serialize a trained PGE(CNN) model to the text format.
pub fn save_model(model: &PgeModel) -> Result<String, PersistError> {
    // Parameters in HasParams order: encoder params then relations.
    let mut clone = model.clone();
    let mut params = clone.encoder.params_mut();
    params.push(clone.relations.param_mut());
    let mut out = header_text(model, params.len())?;
    for p in params {
        let _ = writeln!(out, "shape {} {}", p.value.rows(), p.value.cols());
        write_param_values(&mut out, p.value.as_slice());
    }
    Ok(out)
}

/// Leading magic of the checksummed binary snapshot format.
pub const BINARY_MAGIC: &[u8; 8] = b"PGEBIN01";

/// Serialize a trained PGE(CNN) model to the binary snapshot format:
/// `PGEBIN01`, a little-endian CRC-32 of the payload, then the payload
/// (`u32` header length, the text header, and per parameter `u32`
/// rows, `u32` cols, raw `f32` little-endian values).
pub fn save_model_binary(model: &PgeModel) -> Result<Vec<u8>, PersistError> {
    let mut clone = model.clone();
    let mut params = clone.encoder.params_mut();
    params.push(clone.relations.param_mut());
    let header = header_text(model, params.len())?;
    let mut payload = Vec::with_capacity(header.len() + 64);
    payload.extend_from_slice(&(header.len() as u32).to_le_bytes());
    payload.extend_from_slice(header.as_bytes());
    for p in params {
        payload.extend_from_slice(&(p.value.rows() as u32).to_le_bytes());
        payload.extend_from_slice(&(p.value.cols() as u32).to_le_bytes());
        for v in p.value.as_slice() {
            payload.extend_from_slice(&v.to_le_bytes());
        }
    }
    let mut out = Vec::with_capacity(BINARY_MAGIC.len() + 4 + payload.len());
    out.extend_from_slice(BINARY_MAGIC);
    out.extend_from_slice(&pge_tensor::crc32(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    Ok(out)
}

/// Parse the shared header, producing a model skeleton (every
/// parameter still randomly initialized) plus the declared parameter
/// count; the caller fills the parameters from its format's body.
fn parse_header<'a>(
    lines: &mut impl Iterator<Item = (usize, &'a str)>,
    graph: &ProductGraph,
) -> Result<(PgeModel, usize), PersistError> {
    let mut next = |what: &str| -> Result<(usize, &str), PersistError> {
        lines
            .next()
            .ok_or_else(|| PersistError::Parse(0, format!("missing {what}")))
    };

    let (ln, header) = next("header")?;
    if header.trim() != "#pge-model v1" {
        return Err(PersistError::Parse(ln + 1, "bad header".into()));
    }

    let (ln, scorer_line) = next("scorer")?;
    let mut parts = scorer_line.split_whitespace();
    let bad = |ln: usize, m: &str| PersistError::Parse(ln + 1, m.to_string());
    if parts.next() != Some("scorer") {
        return Err(bad(ln, "expected scorer line"));
    }
    let kind = match parts.next() {
        Some("transe") => ScoreKind::TransE,
        Some("rotate") => ScoreKind::RotatE,
        Some("distmult") => ScoreKind::DistMult,
        Some("complex") => ScoreKind::ComplEx,
        other => return Err(bad(ln, &format!("unknown scorer {other:?}"))),
    };
    let gamma: f32 = parts
        .next()
        .and_then(|x| x.parse().ok())
        .ok_or_else(|| bad(ln, "bad gamma"))?;

    let (ln, cnn_line) = next("cnn config")?;
    let mut parts = cnn_line.split_whitespace();
    if parts.next() != Some("cnn") {
        return Err(bad(ln, "expected cnn line"));
    }
    let mut ints = || -> Result<usize, PersistError> {
        parts
            .next()
            .and_then(|x| x.parse().ok())
            .ok_or_else(|| bad(ln, "bad cnn field"))
    };
    let vocab_n = ints()?;
    let word_dim = ints()?;
    let filters = ints()?;
    let out_dim = ints()?;
    let max_len = ints()?;
    let widths: Vec<usize> = parts
        .next()
        .ok_or_else(|| bad(ln, "missing widths"))?
        .split(',')
        .map(|w| w.parse().map_err(|_| bad(ln, "bad width")))
        .collect::<Result<_, _>>()?;

    let (ln, rel_line) = next("relations")?;
    let n_rels: usize = rel_line
        .strip_prefix("relations ")
        .and_then(|x| x.parse().ok())
        .ok_or_else(|| bad(ln, "bad relations line"))?;

    let (ln, vocab_line) = next("vocab")?;
    let n_words: usize = vocab_line
        .strip_prefix("vocab ")
        .and_then(|x| x.parse().ok())
        .ok_or_else(|| bad(ln, "bad vocab line"))?;
    if n_words != vocab_n {
        return Err(bad(ln, "vocab count mismatch with cnn config"));
    }
    let mut vocab = Vocab::new();
    for i in 0..n_words {
        let (wln, word) = next("vocab word")?;
        if i < 3 {
            // Reserved tokens are created by Vocab::new; validate.
            if word != vocab.word(i as u32) {
                return Err(bad(wln, "reserved token mismatch"));
            }
        } else {
            vocab.add(word);
        }
    }

    // Construct a model skeleton, then overwrite every parameter.
    let mut rng = rand::rngs::mock::StepRng::new(1, 1);
    let cfg = CnnConfig {
        vocab: vocab_n,
        word_dim,
        widths,
        filters_per_width: filters,
        out_dim,
        max_len,
    };
    let scorer = Scorer::new(kind, gamma);
    let words = Embedding::new(&mut rng, vocab_n, word_dim);
    let encoder = TextEncoder::cnn(&mut rng, cfg, words);
    let relations = Embedding::new(&mut rng, n_rels, scorer.rel_dim(out_dim));
    let model = PgeModel::new(vocab, encoder, relations, scorer, graph);

    let (ln, params_line) = next("params")?;
    let n_params: usize = params_line
        .strip_prefix("params ")
        .and_then(|x| x.parse().ok())
        .ok_or_else(|| bad(ln, "bad params line"))?;
    Ok((model, n_params))
}

/// Reload a model saved with [`save_model`]. Token caches are rebuilt
/// for `graph` (pass the graph you intend to score).
pub fn load_model(text: &str, graph: &ProductGraph) -> Result<PgeModel, PersistError> {
    let mut lines = text.lines().enumerate();
    let (mut model, n_params) = parse_header(&mut lines, graph)?;
    let mut next = |what: &str| -> Result<(usize, &str), PersistError> {
        lines
            .next()
            .ok_or_else(|| PersistError::Parse(0, format!("missing {what}")))
    };
    let bad = |ln: usize, m: &str| PersistError::Parse(ln + 1, m.to_string());
    {
        let mut params = model.encoder.params_mut();
        params.push(model.relations.param_mut());
        if params.len() != n_params {
            return Err(PersistError::Parse(0, "parameter count mismatch".into()));
        }
        for p in params {
            let (sln, shape_line) = next("shape")?;
            let mut parts = shape_line.split_whitespace();
            if parts.next() != Some("shape") {
                return Err(bad(sln, "expected shape line"));
            }
            let rows: usize = parts
                .next()
                .and_then(|x| x.parse().ok())
                .ok_or_else(|| bad(sln, "bad rows"))?;
            let cols: usize = parts
                .next()
                .and_then(|x| x.parse().ok())
                .ok_or_else(|| bad(sln, "bad cols"))?;
            if rows != p.value.rows() || cols != p.value.cols() {
                return Err(bad(
                    sln,
                    &format!(
                        "shape mismatch: file {rows}x{cols}, model {}x{}",
                        p.value.rows(),
                        p.value.cols()
                    ),
                ));
            }
            let (vln, value_line) = next("param values")?;
            let slice = p.value.as_mut_slice();
            let mut count = 0usize;
            for (i, tok) in value_line.split_whitespace().enumerate() {
                if i >= slice.len() {
                    return Err(bad(vln, "too many values"));
                }
                let bits = u32::from_str_radix(tok, 16).map_err(|_| bad(vln, "bad value"))?;
                slice[i] = f32::from_bits(bits);
                count += 1;
            }
            if count != slice.len() {
                return Err(bad(vln, "too few values"));
            }
        }
    }
    Ok(model)
}

/// Reload a binary snapshot saved with [`save_model_binary`],
/// verifying the CRC-32 before trusting a single byte of the payload.
pub fn load_model_binary(bytes: &[u8], graph: &ProductGraph) -> Result<PgeModel, PersistError> {
    let corrupt = |m: String| PersistError::Corrupt(m);
    let rest = bytes
        .strip_prefix(&BINARY_MAGIC[..])
        .ok_or_else(|| corrupt("missing PGEBIN01 magic".into()))?;
    if rest.len() < 4 {
        return Err(corrupt("truncated before checksum".into()));
    }
    let (crc_bytes, payload) = rest.split_at(4);
    let stored = u32::from_le_bytes(crc_bytes.try_into().unwrap());
    let computed = pge_tensor::crc32(payload);
    if stored != computed {
        return Err(corrupt(format!(
            "CRC-32 mismatch (stored {stored:08x}, computed {computed:08x}) — \
             the snapshot is truncated or bit-flipped; re-export it"
        )));
    }
    if payload.len() < 4 {
        return Err(corrupt("payload too short for header length".into()));
    }
    let header_len = u32::from_le_bytes(payload[..4].try_into().unwrap()) as usize;
    let header = payload
        .get(4..4 + header_len)
        .ok_or_else(|| corrupt("header extends past end of payload".into()))?;
    let header = std::str::from_utf8(header).map_err(|_| corrupt("header is not UTF-8".into()))?;
    let mut lines = header.lines().enumerate();
    let (mut model, n_params) = parse_header(&mut lines, graph)?;
    let mut cur = &payload[4 + header_len..];
    {
        let mut params = model.encoder.params_mut();
        params.push(model.relations.param_mut());
        if params.len() != n_params {
            return Err(corrupt("parameter count mismatch".into()));
        }
        for p in params {
            if cur.len() < 8 {
                return Err(corrupt("truncated parameter block".into()));
            }
            let rows = u32::from_le_bytes(cur[..4].try_into().unwrap()) as usize;
            let cols = u32::from_le_bytes(cur[4..8].try_into().unwrap()) as usize;
            cur = &cur[8..];
            if rows != p.value.rows() || cols != p.value.cols() {
                return Err(corrupt(format!(
                    "shape mismatch: file {rows}x{cols}, model {}x{}",
                    p.value.rows(),
                    p.value.cols()
                )));
            }
            let slice = p.value.as_mut_slice();
            let need = slice.len() * 4;
            if cur.len() < need {
                return Err(corrupt("parameter values truncated".into()));
            }
            for (v, chunk) in slice.iter_mut().zip(cur[..need].chunks_exact(4)) {
                *v = f32::from_le_bytes(chunk.try_into().unwrap());
            }
            cur = &cur[need..];
        }
    }
    if !cur.is_empty() {
        return Err(corrupt("trailing bytes after parameters".into()));
    }
    Ok(model)
}

/// Leading magic of the sectioned PGEBIN02 snapshot container
/// (see `pge-store`): memory-mappable, 64-byte-aligned f32 sections,
/// per-section CRC-32, and optionally an embedding bank riding in the
/// same file.
pub const BINARY_MAGIC2: &[u8; 8] = pge_store::MAGIC2;

/// Leading bytes of the text format (`#pge-model v1`).
const TEXT_MAGIC: &[u8] = b"#pge-model";

/// Name of the snapshot section holding the shared text header.
const SEC_MODEL_HEADER: &str = "model.header";

fn io_err(e: std::io::Error) -> PersistError {
    PersistError::Io(e.to_string())
}

fn store_err(e: pge_store::StoreError) -> PersistError {
    use pge_store::StoreError as E;
    match e {
        E::UnknownFormat { magic } => {
            PersistError::UnknownFormat(format!("leading bytes {magic:02x?}"))
        }
        E::Corrupt(m) => PersistError::Corrupt(m),
        E::Parse(m) => PersistError::Parse(0, m),
        E::MmapFailed(e) => PersistError::Io(format!("mmap failed: {e}")),
        E::MissingSection(n) => PersistError::Corrupt(format!("missing snapshot section {n:?}")),
        E::WrongKind { name } => {
            PersistError::Corrupt(format!("snapshot section {name:?} has the wrong kind"))
        }
        E::Io(e) => PersistError::Io(e.to_string()),
    }
}

/// Write the model's header and parameter sections into an open
/// PGEBIN02 writer: `model.header` (the shared text header) plus one
/// `model.param.{i}` f32 section per parameter, in `HasParams` order.
/// `pge embed` appends bank sections to the same writer afterwards,
/// which is how a bank is guaranteed to match its model — they are
/// one file.
pub fn write_model_sections(
    model: &PgeModel,
    w: &mut pge_store::SnapshotWriter,
) -> Result<(), PersistError> {
    let mut clone = model.clone();
    let mut params = clone.encoder.params_mut();
    params.push(clone.relations.param_mut());
    let header = header_text(model, params.len())?;
    w.add_bytes(SEC_MODEL_HEADER, header.as_bytes())
        .map_err(io_err)?;
    for (i, p) in params.iter().enumerate() {
        w.add_f32s(
            &format!("model.param.{i}"),
            p.value.rows() as u64,
            p.value.cols() as u64,
            p.value.as_slice(),
        )
        .map_err(io_err)?;
    }
    Ok(())
}

/// Serialize a trained PGE(CNN) model as a PGEBIN02 snapshot file.
pub fn save_model_store(model: &PgeModel, path: &std::path::Path) -> Result<(), PersistError> {
    let mut w = pge_store::SnapshotWriter::create(path).map_err(io_err)?;
    write_model_sections(model, &mut w)?;
    w.finish().map_err(io_err)
}

/// Rebuild a model from an open PGEBIN02 snapshot, attaching the
/// embedding bank when the snapshot carries one. `resident_budget` is
/// the bank's touched-bytes eviction budget (see
/// [`pge_store::EmbeddingBank`]); irrelevant for heap-backed opens.
pub fn model_from_snapshot(
    snap: &std::sync::Arc<pge_store::Snapshot>,
    graph: &ProductGraph,
    resident_budget: u64,
) -> Result<PgeModel, PersistError> {
    let header = snap.section(SEC_MODEL_HEADER).map_err(store_err)?;
    let header = std::str::from_utf8(header.bytes)
        .map_err(|_| PersistError::Corrupt("model.header is not UTF-8".into()))?;
    let mut lines = header.lines().enumerate();
    let (mut model, n_params) = parse_header(&mut lines, graph)?;
    {
        let mut params = model.encoder.params_mut();
        params.push(model.relations.param_mut());
        if params.len() != n_params {
            return Err(PersistError::Corrupt("parameter count mismatch".into()));
        }
        for (i, p) in params.iter_mut().enumerate() {
            let sec = snap
                .section(&format!("model.param.{i}"))
                .map_err(store_err)?;
            if sec.meta.rows != p.value.rows() as u64 || sec.meta.cols != p.value.cols() as u64 {
                return Err(PersistError::Corrupt(format!(
                    "model.param.{i}: snapshot {}x{}, model {}x{}",
                    sec.meta.rows,
                    sec.meta.cols,
                    p.value.rows(),
                    p.value.cols()
                )));
            }
            p.value
                .as_mut_slice()
                .copy_from_slice(sec.as_f32s().map_err(store_err)?);
        }
    }
    if let Some(bank) =
        pge_store::EmbeddingBank::open(snap.clone(), resident_budget).map_err(store_err)?
    {
        if bank.dim() != model.dim() {
            return Err(PersistError::Corrupt(format!(
                "bank dim {} does not match model dim {}",
                bank.dim(),
                model.dim()
            )));
        }
        model.attach_bank(std::sync::Arc::new(bank));
    }
    // Everything the model serves from the heap has been copied out
    // (params above, the bank's index inside its open); drop the
    // pages those sequential reads left resident.
    snap.evict_resident();
    Ok(model)
}

/// Open a PGEBIN02 snapshot file and rebuild its model (bank
/// attached when present). `mode` picks the backing: mapped rows are
/// served straight off the page cache, heap is a full in-memory copy.
pub fn load_model_store(
    path: &std::path::Path,
    graph: &ProductGraph,
    mode: pge_store::MmapMode,
    resident_budget: u64,
) -> Result<PgeModel, PersistError> {
    let snap = std::sync::Arc::new(pge_store::Snapshot::open(path, mode).map_err(store_err)?);
    model_from_snapshot(&snap, graph, resident_budget)
}

/// Reload a model from any on-disk format, routed by leading magic:
/// `PGEBIN01` → checksummed flat binary, `PGEBIN02` → sectioned
/// snapshot (honoring `mode`), `#pge-model` → text. Anything else is
/// a typed [`PersistError::UnknownFormat`].
pub fn load_model_auto_path(
    path: &std::path::Path,
    graph: &ProductGraph,
    mode: pge_store::MmapMode,
    resident_budget: u64,
) -> Result<PgeModel, PersistError> {
    let magic = pge_store::peek_magic(path).map_err(io_err)?;
    if &magic == BINARY_MAGIC2 {
        return load_model_store(path, graph, mode, resident_budget);
    }
    let bytes = std::fs::read(path).map_err(io_err)?;
    load_model_auto(&bytes, graph)
}

/// Reload a model from in-memory bytes, routed by leading magic (see
/// [`load_model_auto_path`]; a PGEBIN02 snapshot loaded from bytes is
/// always heap-backed — mapping needs a file).
pub fn load_model_auto(bytes: &[u8], graph: &ProductGraph) -> Result<PgeModel, PersistError> {
    if bytes.starts_with(&BINARY_MAGIC[..]) {
        return load_model_binary(bytes, graph);
    }
    if bytes.starts_with(&BINARY_MAGIC2[..]) {
        let snap = std::sync::Arc::new(pge_store::Snapshot::open_bytes(bytes).map_err(store_err)?);
        return model_from_snapshot(&snap, graph, pge_store::DEFAULT_RESIDENT_BUDGET);
    }
    // A file shorter than the magic that matches a *prefix* of one is
    // a truncated binary snapshot. Surface a corruption error rather
    // than an unknown-format one (the two magics share a 7-byte
    // prefix, so one check covers both).
    if !bytes.is_empty()
        && bytes.len() < BINARY_MAGIC.len()
        && (BINARY_MAGIC.starts_with(bytes) || BINARY_MAGIC2.starts_with(bytes))
    {
        return Err(PersistError::Corrupt(format!(
            "snapshot is truncated inside the magic ({} of {} bytes) — \
             the file was cut off mid-write; re-export it",
            bytes.len(),
            BINARY_MAGIC.len()
        )));
    }
    if bytes.starts_with(TEXT_MAGIC) {
        let text = std::str::from_utf8(bytes)
            .map_err(|_| PersistError::Corrupt("text model file is not valid UTF-8".into()))?;
        return load_model(text, graph);
    }
    let lead = &bytes[..bytes.len().min(8)];
    Err(PersistError::UnknownFormat(format!(
        "leading bytes {lead:02x?} match no model format \
         (expected PGEBIN01, PGEBIN02, or '#pge-model' text)"
    )))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trainer::{train_pge, PgeConfig};
    use pge_graph::{Dataset, ProductGraph};

    fn tiny_dataset() -> Dataset {
        let mut g = ProductGraph::new();
        let mut train = Vec::new();
        for i in 0..20 {
            let flavor = if i % 2 == 0 { "spicy" } else { "sweet" };
            train.push(g.add_fact(&format!("brand{i} {flavor} chips {i}"), "flavor", flavor));
        }
        Dataset::new(g, train, vec![], vec![])
    }

    #[test]
    fn round_trip_scores_bit_identically() {
        let d = tiny_dataset();
        let trained = train_pge(
            &d,
            &PgeConfig {
                epochs: 3,
                ..PgeConfig::tiny()
            },
        );
        let text = save_model(&trained.model).unwrap();
        let loaded = load_model(&text, &d.graph).unwrap();
        for t in d.train.iter().take(10) {
            assert_eq!(trained.model.score_triple(t), loaded.score_triple(t));
        }
        // Inductive scoring also matches.
        let attr = d.graph.lookup_attr("flavor").unwrap();
        assert_eq!(
            trained
                .model
                .score_fact("totally new spicy snack", attr, "spicy"),
            loaded.score_fact("totally new spicy snack", attr, "spicy"),
        );
    }

    #[test]
    fn bert_models_are_rejected() {
        let d = tiny_dataset();
        let trained = train_pge(
            &d,
            &PgeConfig {
                encoder: crate::encoder::EncoderKind::Bert,
                epochs: 1,
                dim: 16,
                ..PgeConfig::tiny()
            },
        );
        assert!(matches!(
            save_model(&trained.model),
            Err(PersistError::UnsupportedEncoder)
        ));
    }

    #[test]
    fn garbage_is_rejected_with_line_numbers() {
        let d = tiny_dataset();
        assert!(load_model("", &d.graph).is_err());
        assert!(load_model("#pge-model v2\n", &d.graph).is_err());
        let truncated = "#pge-model v1\nscorer rotate 6\n";
        match load_model(truncated, &d.graph) {
            Err(PersistError::Parse(_, msg)) => assert!(msg.contains("missing")),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    /// Every parameter matrix of a model as raw bit patterns, in
    /// HasParams order — the ground truth for bit-identity claims.
    fn param_bits(model: &PgeModel) -> Vec<Vec<u32>> {
        let mut clone = model.clone();
        let mut params = clone.encoder.params_mut();
        params.push(clone.relations.param_mut());
        params
            .iter()
            .map(|p| p.value.as_slice().iter().map(|v| v.to_bits()).collect())
            .collect()
    }

    #[test]
    fn binary_and_text_round_trips_are_bit_identical() {
        let d = tiny_dataset();
        let trained = train_pge(
            &d,
            &PgeConfig {
                epochs: 3,
                ..PgeConfig::tiny()
            },
        );
        let text = save_model(&trained.model).unwrap();
        let binary = save_model_binary(&trained.model).unwrap();
        assert!(
            binary.len() < text.len(),
            "binary ({}) should undercut hex text ({})",
            binary.len(),
            text.len()
        );
        let from_text = load_model(&text, &d.graph).unwrap();
        let from_binary = load_model_binary(&binary, &d.graph).unwrap();
        assert_eq!(param_bits(&from_text), param_bits(&from_binary));
        assert_eq!(param_bits(&trained.model), param_bits(&from_binary));
        // A binary round-trip of the text-loaded model reproduces the
        // original snapshot byte for byte, and vice versa.
        assert_eq!(save_model_binary(&from_text).unwrap(), binary);
        assert_eq!(save_model(&from_binary).unwrap(), text);
        for t in d.train.iter().take(10) {
            assert_eq!(
                trained.model.score_triple(t).to_bits(),
                from_binary.score_triple(t).to_bits()
            );
        }
    }

    #[test]
    fn load_model_auto_detects_both_formats() {
        let d = tiny_dataset();
        let trained = train_pge(
            &d,
            &PgeConfig {
                epochs: 1,
                ..PgeConfig::tiny()
            },
        );
        let text = save_model(&trained.model).unwrap();
        let binary = save_model_binary(&trained.model).unwrap();
        let a = load_model_auto(text.as_bytes(), &d.graph).unwrap();
        let b = load_model_auto(&binary, &d.graph).unwrap();
        assert_eq!(param_bits(&a), param_bits(&b));
        // Bytes that are no known format get the typed UnknownFormat
        // error, not a text parse attempt on garbage.
        assert!(matches!(
            load_model_auto(&[0xff, 0x00, 0xfe], &d.graph),
            Err(PersistError::UnknownFormat(_))
        ));
        assert!(matches!(
            load_model_auto(b"ELF\x7f not a model at all", &d.graph),
            Err(PersistError::UnknownFormat(_))
        ));
    }

    #[test]
    fn pgebin2_round_trip_is_bit_identical_across_backings() {
        let d = tiny_dataset();
        let trained = train_pge(
            &d,
            &PgeConfig {
                epochs: 2,
                ..PgeConfig::tiny()
            },
        );
        let dir = std::env::temp_dir().join(format!("pge-persist-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.pgebin2");
        save_model_store(&trained.model, &path).unwrap();

        // The v2 container routes through load_model_auto_path by
        // magic, in every backing mode, bit-identically.
        for mode in [
            pge_store::MmapMode::On,
            pge_store::MmapMode::Off,
            pge_store::MmapMode::Auto,
        ] {
            let loaded = load_model_auto_path(&path, &d.graph, mode, 0).unwrap();
            assert_eq!(param_bits(&trained.model), param_bits(&loaded));
            for t in d.train.iter().take(5) {
                assert_eq!(
                    trained.model.score_triple(t).to_bits(),
                    loaded.score_triple(t).to_bits(),
                    "mode {mode:?}"
                );
            }
        }
        // The byte-slice entry point routes PGEBIN02 too.
        let bytes = std::fs::read(&path).unwrap();
        let from_bytes = load_model_auto(&bytes, &d.graph).unwrap();
        assert_eq!(param_bits(&trained.model), param_bits(&from_bytes));
        // And PGEBIN01 snapshots keep loading through the same path.
        let v1 = save_model_binary(&trained.model).unwrap();
        let v1_path = dir.join("model.pgebin1");
        std::fs::write(&v1_path, &v1).unwrap();
        let from_v1 =
            load_model_auto_path(&v1_path, &d.graph, pge_store::MmapMode::Auto, 0).unwrap();
        assert_eq!(param_bits(&trained.model), param_bits(&from_v1));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncated_binary_snapshot_reports_corruption_not_text_parse() {
        let d = tiny_dataset();
        let trained = train_pge(
            &d,
            &PgeConfig {
                epochs: 1,
                ..PgeConfig::tiny()
            },
        );
        let binary = save_model_binary(&trained.model).unwrap();
        // Cuts inside the magic used to fall through to the text
        // parser and die with "bad header"; they must surface as
        // binary corruption instead.
        for cut in 1..BINARY_MAGIC.len() {
            match load_model_auto(&binary[..cut], &d.graph) {
                Err(PersistError::Corrupt(msg)) => {
                    assert!(
                        msg.contains("truncated"),
                        "cut {cut}: unhelpful error {msg}"
                    )
                }
                other => panic!("cut {cut}: expected Corrupt, got {other:?}"),
            }
        }
        // Cuts past the magic take the binary path and fail its CRC or
        // structural checks — never the text parser.
        for cut in [BINARY_MAGIC.len(), BINARY_MAGIC.len() + 2, binary.len() / 2] {
            match load_model_auto(&binary[..cut], &d.graph) {
                Err(PersistError::Corrupt(_)) => {}
                other => panic!("cut {cut}: expected Corrupt, got {other:?}"),
            }
        }
    }

    #[test]
    fn corrupted_crc_is_rejected_with_clear_error() {
        let d = tiny_dataset();
        let trained = train_pge(
            &d,
            &PgeConfig {
                epochs: 1,
                ..PgeConfig::tiny()
            },
        );
        let mut binary = save_model_binary(&trained.model).unwrap();
        // Flip one payload bit well past the checksum field.
        let ix = binary.len() - 3;
        binary[ix] ^= 0x10;
        match load_model_binary(&binary, &d.graph) {
            Err(PersistError::Corrupt(msg)) => {
                assert!(msg.contains("CRC-32 mismatch"), "unhelpful error: {msg}")
            }
            other => panic!("expected CRC failure, got {other:?}"),
        }
        // Truncation is equally fatal.
        let whole = save_model_binary(&trained.model).unwrap();
        for cut in [3, 9, whole.len() / 2, whole.len() - 1] {
            assert!(
                load_model_binary(&whole[..cut], &d.graph).is_err(),
                "truncation at {cut} must not load"
            );
        }
    }

    #[test]
    fn tampered_values_detected_by_shape_or_count() {
        let d = tiny_dataset();
        let trained = train_pge(
            &d,
            &PgeConfig {
                epochs: 1,
                ..PgeConfig::tiny()
            },
        );
        let text = save_model(&trained.model).unwrap();
        // Drop the last line (a parameter row).
        let truncated: String = {
            let mut ls: Vec<&str> = text.lines().collect();
            ls.pop();
            ls.join("\n")
        };
        assert!(load_model(&truncated, &d.graph).is_err());
    }
}
