//! Model persistence: save a trained PGE model to a text artifact and
//! reload it elsewhere.
//!
//! A production catalog pipeline trains once and scores continuously;
//! this module is the hand-off. The format is line-oriented text with
//! parameters stored as lossless `f32` bit patterns (hex), so a
//! reloaded model scores *bit-identically*.
//!
//! Only the CNN encoder variant is persisted — it is the paper's
//! deployed configuration (the BERT variant exists for the Table-5
//! scalability contrast, not for deployment).

use crate::encoder::TextEncoder;
use crate::model::PgeModel;
use crate::score::{ScoreKind, Scorer};
use pge_graph::ProductGraph;
use pge_nn::gradcheck::HasParams;
use pge_nn::{CnnConfig, Embedding};
use pge_text::Vocab;
use std::fmt::Write as _;

/// Persistence failures.
#[derive(Debug)]
pub enum PersistError {
    /// Only CNN-encoder models can be saved.
    UnsupportedEncoder,
    /// Parse failure with line number and message.
    Parse(usize, String),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::UnsupportedEncoder => {
                write!(f, "only PGE(CNN) models support persistence")
            }
            PersistError::Parse(line, msg) => write!(f, "parse error at line {line}: {msg}"),
        }
    }
}

impl std::error::Error for PersistError {}

fn write_param_values(out: &mut String, values: &[f32]) {
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            out.push(' ');
        }
        let _ = write!(out, "{:08x}", v.to_bits());
    }
    out.push('\n');
}

/// Serialize a trained PGE(CNN) model.
pub fn save_model(model: &PgeModel) -> Result<String, PersistError> {
    let cnn = match &model.encoder {
        TextEncoder::Cnn(c) => c,
        TextEncoder::Bert(_) => return Err(PersistError::UnsupportedEncoder),
    };
    let cfg = cnn.config();
    let scorer = model.scorer;
    let mut out = String::new();
    let _ = writeln!(out, "#pge-model v1");
    let _ = writeln!(
        out,
        "scorer {} {}",
        scorer.kind.name().to_lowercase(),
        scorer.gamma
    );
    let widths: Vec<String> = cfg.widths.iter().map(|w| w.to_string()).collect();
    let _ = writeln!(
        out,
        "cnn {} {} {} {} {} {}",
        cfg.vocab,
        cfg.word_dim,
        cfg.filters_per_width,
        cfg.out_dim,
        cfg.max_len,
        widths.join(",")
    );
    let _ = writeln!(out, "relations {}", model.relations.len());
    let _ = writeln!(out, "vocab {}", model.vocab.len());
    for w in model.vocab.words() {
        let _ = writeln!(out, "{w}");
    }
    // Parameters in HasParams order: encoder params then relations.
    let mut clone = model.clone();
    let mut params = clone.encoder.params_mut();
    params.push(clone.relations.param_mut());
    let _ = writeln!(out, "params {}", params.len());
    for p in params {
        let _ = writeln!(out, "shape {} {}", p.value.rows(), p.value.cols());
        write_param_values(&mut out, p.value.as_slice());
    }
    Ok(out)
}

/// Reload a model saved with [`save_model`]. Token caches are rebuilt
/// for `graph` (pass the graph you intend to score).
pub fn load_model(text: &str, graph: &ProductGraph) -> Result<PgeModel, PersistError> {
    let mut lines = text.lines().enumerate();
    let mut next = |what: &str| -> Result<(usize, &str), PersistError> {
        lines
            .next()
            .ok_or_else(|| PersistError::Parse(0, format!("missing {what}")))
    };

    let (ln, header) = next("header")?;
    if header.trim() != "#pge-model v1" {
        return Err(PersistError::Parse(ln + 1, "bad header".into()));
    }

    let (ln, scorer_line) = next("scorer")?;
    let mut parts = scorer_line.split_whitespace();
    let bad = |ln: usize, m: &str| PersistError::Parse(ln + 1, m.to_string());
    if parts.next() != Some("scorer") {
        return Err(bad(ln, "expected scorer line"));
    }
    let kind = match parts.next() {
        Some("transe") => ScoreKind::TransE,
        Some("rotate") => ScoreKind::RotatE,
        Some("distmult") => ScoreKind::DistMult,
        Some("complex") => ScoreKind::ComplEx,
        other => return Err(bad(ln, &format!("unknown scorer {other:?}"))),
    };
    let gamma: f32 = parts
        .next()
        .and_then(|x| x.parse().ok())
        .ok_or_else(|| bad(ln, "bad gamma"))?;

    let (ln, cnn_line) = next("cnn config")?;
    let mut parts = cnn_line.split_whitespace();
    if parts.next() != Some("cnn") {
        return Err(bad(ln, "expected cnn line"));
    }
    let mut ints = || -> Result<usize, PersistError> {
        parts
            .next()
            .and_then(|x| x.parse().ok())
            .ok_or_else(|| bad(ln, "bad cnn field"))
    };
    let vocab_n = ints()?;
    let word_dim = ints()?;
    let filters = ints()?;
    let out_dim = ints()?;
    let max_len = ints()?;
    let widths: Vec<usize> = parts
        .next()
        .ok_or_else(|| bad(ln, "missing widths"))?
        .split(',')
        .map(|w| w.parse().map_err(|_| bad(ln, "bad width")))
        .collect::<Result<_, _>>()?;

    let (ln, rel_line) = next("relations")?;
    let n_rels: usize = rel_line
        .strip_prefix("relations ")
        .and_then(|x| x.parse().ok())
        .ok_or_else(|| bad(ln, "bad relations line"))?;

    let (ln, vocab_line) = next("vocab")?;
    let n_words: usize = vocab_line
        .strip_prefix("vocab ")
        .and_then(|x| x.parse().ok())
        .ok_or_else(|| bad(ln, "bad vocab line"))?;
    if n_words != vocab_n {
        return Err(bad(ln, "vocab count mismatch with cnn config"));
    }
    let mut vocab = Vocab::new();
    for i in 0..n_words {
        let (wln, word) = next("vocab word")?;
        if i < 3 {
            // Reserved tokens are created by Vocab::new; validate.
            if word != vocab.word(i as u32) {
                return Err(bad(wln, "reserved token mismatch"));
            }
        } else {
            vocab.add(word);
        }
    }

    // Construct a model skeleton, then overwrite every parameter.
    let mut rng = rand::rngs::mock::StepRng::new(1, 1);
    let cfg = CnnConfig {
        vocab: vocab_n,
        word_dim,
        widths,
        filters_per_width: filters,
        out_dim,
        max_len,
    };
    let scorer = Scorer::new(kind, gamma);
    let words = Embedding::new(&mut rng, vocab_n, word_dim);
    let encoder = TextEncoder::cnn(&mut rng, cfg, words);
    let relations = Embedding::new(&mut rng, n_rels, scorer.rel_dim(out_dim));
    let mut model = PgeModel::new(vocab, encoder, relations, scorer, graph);

    let (ln, params_line) = next("params")?;
    let n_params: usize = params_line
        .strip_prefix("params ")
        .and_then(|x| x.parse().ok())
        .ok_or_else(|| bad(ln, "bad params line"))?;
    {
        let mut params = model.encoder.params_mut();
        params.push(model.relations.param_mut());
        if params.len() != n_params {
            return Err(bad(ln, "parameter count mismatch"));
        }
        for p in params {
            let (sln, shape_line) = next("shape")?;
            let mut parts = shape_line.split_whitespace();
            if parts.next() != Some("shape") {
                return Err(bad(sln, "expected shape line"));
            }
            let rows: usize = parts
                .next()
                .and_then(|x| x.parse().ok())
                .ok_or_else(|| bad(sln, "bad rows"))?;
            let cols: usize = parts
                .next()
                .and_then(|x| x.parse().ok())
                .ok_or_else(|| bad(sln, "bad cols"))?;
            if rows != p.value.rows() || cols != p.value.cols() {
                return Err(bad(
                    sln,
                    &format!(
                        "shape mismatch: file {rows}x{cols}, model {}x{}",
                        p.value.rows(),
                        p.value.cols()
                    ),
                ));
            }
            let (vln, value_line) = next("param values")?;
            let slice = p.value.as_mut_slice();
            let mut count = 0usize;
            for (i, tok) in value_line.split_whitespace().enumerate() {
                if i >= slice.len() {
                    return Err(bad(vln, "too many values"));
                }
                let bits = u32::from_str_radix(tok, 16).map_err(|_| bad(vln, "bad value"))?;
                slice[i] = f32::from_bits(bits);
                count += 1;
            }
            if count != slice.len() {
                return Err(bad(vln, "too few values"));
            }
        }
    }
    Ok(model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trainer::{train_pge, PgeConfig};
    use pge_graph::{Dataset, ProductGraph};

    fn tiny_dataset() -> Dataset {
        let mut g = ProductGraph::new();
        let mut train = Vec::new();
        for i in 0..20 {
            let flavor = if i % 2 == 0 { "spicy" } else { "sweet" };
            train.push(g.add_fact(&format!("brand{i} {flavor} chips {i}"), "flavor", flavor));
        }
        Dataset::new(g, train, vec![], vec![])
    }

    #[test]
    fn round_trip_scores_bit_identically() {
        let d = tiny_dataset();
        let trained = train_pge(
            &d,
            &PgeConfig {
                epochs: 3,
                ..PgeConfig::tiny()
            },
        );
        let text = save_model(&trained.model).unwrap();
        let loaded = load_model(&text, &d.graph).unwrap();
        for t in d.train.iter().take(10) {
            assert_eq!(trained.model.score_triple(t), loaded.score_triple(t));
        }
        // Inductive scoring also matches.
        let attr = d.graph.lookup_attr("flavor").unwrap();
        assert_eq!(
            trained
                .model
                .score_fact("totally new spicy snack", attr, "spicy"),
            loaded.score_fact("totally new spicy snack", attr, "spicy"),
        );
    }

    #[test]
    fn bert_models_are_rejected() {
        let d = tiny_dataset();
        let trained = train_pge(
            &d,
            &PgeConfig {
                encoder: crate::encoder::EncoderKind::Bert,
                epochs: 1,
                dim: 16,
                ..PgeConfig::tiny()
            },
        );
        assert!(matches!(
            save_model(&trained.model),
            Err(PersistError::UnsupportedEncoder)
        ));
    }

    #[test]
    fn garbage_is_rejected_with_line_numbers() {
        let d = tiny_dataset();
        assert!(load_model("", &d.graph).is_err());
        assert!(load_model("#pge-model v2\n", &d.graph).is_err());
        let truncated = "#pge-model v1\nscorer rotate 6\n";
        match load_model(truncated, &d.graph) {
            Err(PersistError::Parse(_, msg)) => assert!(msg.contains("missing")),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn tampered_values_detected_by_shape_or_count() {
        let d = tiny_dataset();
        let trained = train_pge(
            &d,
            &PgeConfig {
                epochs: 1,
                ..PgeConfig::tiny()
            },
        );
        let text = save_model(&trained.model).unwrap();
        // Drop the last line (a parameter row).
        let truncated: String = {
            let mut ls: Vec<&str> = text.lines().collect();
            ls.pop();
            ls.join("\n")
        };
        assert!(load_model(&truncated, &d.graph).is_err());
    }
}
