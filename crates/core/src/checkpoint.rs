//! Crash-safe training checkpoints with bit-identical resume.
//!
//! A killed `pge train` run used to lose everything: the model, the
//! Adam moments, and every learned confidence score C(t,a,v). This
//! module snapshots the *full* trainer state at each epoch boundary —
//! model parameters, per-parameter Adam first/second moments and the
//! global step counter, the confidence table of the noise-aware
//! mechanism, the completed-epoch counter, and the per-epoch loss
//! history — so a resumed run continues exactly where the killed one
//! stopped and produces a **bit-identical final model** to a run that
//! was never interrupted, at any `--threads`.
//!
//! The on-disk format follows the `PGEBIN01` pattern established by
//! model snapshots and `pge-scan` checkpoints: a `PGECKPT1` magic, a
//! little-endian CRC-32 over the payload, then the payload. The file
//! is replaced atomically (temp file, fsync, rename), so a kill at any
//! instant leaves either the previous checkpoint or the new one —
//! never a torn file.
//!
//! Two fingerprints are stored and verified on resume:
//!
//! * a **config hash** over every training-relevant knob of
//!   [`PgeConfig`] *except* `threads` (the gradient-lane design makes
//!   results thread-count-invariant, so resuming with a different
//!   worker count is explicitly allowed);
//! * a **data fingerprint** over the product graph and the training
//!   split — titles, attribute names, value texts, and the train
//!   triples in order. Confidence scores and shuffle streams are
//!   positional, so resuming against a different corpus would silently
//!   mis-assign both; it is rejected with a clear error instead.

use crate::confidence::ConfidenceStore;
use crate::model::PgeModel;
use crate::persist::{load_model_binary, save_model_binary, PersistError};
use crate::trainer::PgeConfig;
use pge_graph::{Dataset, ProductGraph};
use pge_nn::gradcheck::HasParams;
use std::fs;
use std::path::{Path, PathBuf};

/// Leading magic of the trainer-state checkpoint format.
pub const CHECKPOINT_MAGIC: &[u8; 8] = b"PGECKPT1";

/// File name of the trainer checkpoint inside the checkpoint
/// directory.
pub const CHECKPOINT_FILE: &str = "trainer.ckpt";

/// Where (and whether) the trainer checkpoints, plus the kill switch
/// used by tests and CI to simulate a crash at an epoch boundary.
#[derive(Clone, Debug)]
pub struct CheckpointOptions {
    /// Directory the checkpoint file lives in (created if missing).
    pub dir: PathBuf,
    /// Load and continue from the directory's checkpoint instead of
    /// starting fresh. Missing checkpoint → error.
    pub resume: bool,
    /// Stop training (as a simulated kill) once this many epochs have
    /// completed and been checkpointed. `None` runs to the end.
    pub stop_after: Option<usize>,
}

impl CheckpointOptions {
    /// Checkpoint into `dir`, starting training from scratch.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        CheckpointOptions {
            dir: dir.into(),
            resume: false,
            stop_after: None,
        }
    }

    /// Resume from the checkpoint in `dir` and keep checkpointing
    /// there.
    pub fn resume(dir: impl Into<PathBuf>) -> Self {
        CheckpointOptions {
            dir: dir.into(),
            resume: true,
            stop_after: None,
        }
    }
}

/// The Adam moment estimates of one parameter tensor.
#[derive(Clone, Debug, PartialEq)]
pub struct MomentRecord {
    pub rows: usize,
    pub cols: usize,
    /// First-moment estimate, row-major.
    pub m: Vec<f32>,
    /// Second-moment estimate, row-major.
    pub v: Vec<f32>,
}

/// Everything the trainer needs to continue a run bit-identically:
/// captured at an epoch boundary, written durably, verified on load.
#[derive(Clone, Debug, PartialEq)]
pub struct TrainerState {
    /// Epochs fully completed (and reflected in the snapshot).
    pub epochs_done: usize,
    /// Global Adam step count (bias correction depends on it).
    pub step: u64,
    /// Hash of the training config (minus `threads`); see
    /// [`config_hash`].
    pub config_hash: u64,
    /// Fingerprint of graph + train split; see [`data_fingerprint`].
    pub data_fingerprint: u64,
    /// Name of the confidence backend that produced the confidence
    /// table. Stored redundantly with its [`config_hash`] contribution
    /// so a backend mismatch rejects with a *specific* message instead
    /// of the generic config one.
    pub backend: String,
    /// Fingerprint of the delta windows already ingested by an
    /// incremental run (0 for plain training); see
    /// `pge_graph::delta::stream_fingerprint`.
    pub delta_fingerprint: u64,
    /// Ingest windows fully completed by an incremental run (0 for
    /// plain training).
    pub windows_done: usize,
    /// Mean loss of every completed epoch, so a resumed run reports
    /// the full history.
    pub epoch_losses: Vec<f32>,
    /// Complete `PGEBIN01` model snapshot (parameters only).
    pub model_snapshot: Vec<u8>,
    /// Adam moments per parameter, in `HasParams` order with the
    /// relation table last — the same order the snapshot uses.
    pub moments: Vec<MomentRecord>,
    /// The confidence table C(t,a,v), positional over the train split.
    pub confidence: Vec<f32>,
    /// Auxiliary confidence-backend state (the CCA neighbor cache;
    /// empty for the Eq. 6 backend).
    pub aux: Vec<f32>,
}

/// FNV-1a 64-bit, the workspace's zero-dependency stable hash.
fn fnv1a(h: u64, bytes: &[u8]) -> u64 {
    let mut h = h;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

fn fnv_u64(h: u64, x: u64) -> u64 {
    fnv1a(h, &x.to_le_bytes())
}

fn fnv_str(h: u64, s: &str) -> u64 {
    // Length-prefixed so "ab","c" and "a","bc" hash differently.
    fnv1a(fnv_u64(h, s.len() as u64), s.as_bytes())
}

/// Hash every training-relevant field of the config **except**
/// `threads`: thread count only decides who computes a gradient lane,
/// never the result, so a checkpoint taken at `--threads 8` resumes
/// legally at `--threads 1` (and vice versa).
pub fn config_hash(cfg: &PgeConfig) -> u64 {
    let mut h = FNV_OFFSET;
    h = fnv_u64(h, cfg.dim as u64);
    h = fnv_u64(h, cfg.word_dim as u64);
    h = fnv_u64(h, cfg.widths.len() as u64);
    for &w in &cfg.widths {
        h = fnv_u64(h, w as u64);
    }
    h = fnv_u64(h, cfg.filters_per_width as u64);
    h = fnv_u64(h, cfg.max_len as u64);
    h = fnv_str(h, cfg.encoder.name());
    h = fnv_str(h, cfg.score.name());
    h = fnv_u64(h, cfg.gamma.to_bits() as u64);
    h = fnv_u64(h, cfg.epochs as u64);
    h = fnv_u64(h, cfg.batch as u64);
    h = fnv_u64(h, cfg.negatives as u64);
    h = fnv_u64(h, cfg.lr.to_bits() as u64);
    h = fnv_u64(
        h,
        matches!(cfg.sampling, pge_graph::SamplingMode::PerAttribute) as u64,
    );
    h = fnv_u64(h, cfg.noise_aware as u64);
    h = fnv_u64(h, cfg.alpha.to_bits() as u64);
    h = fnv_u64(h, cfg.beta.to_bits() as u64);
    h = fnv_u64(h, cfg.confidence_lr.to_bits() as u64);
    h = fnv_u64(h, cfg.confidence_warmup as u64);
    h = fnv_str(h, cfg.confidence.name());
    h = fnv_u64(h, cfg.word2vec_epochs as u64);
    h = fnv_u64(h, cfg.rotate_phase_init as u64);
    h = fnv_u64(h, cfg.seed);
    h
}

/// Fingerprint the corpus the checkpoint was trained against: the
/// graph's entity texts and the train split in order. Confidence
/// scores, shuffle streams, and negative-sampling streams are all
/// positional over this data, so any change invalidates a resume.
pub fn data_fingerprint(dataset: &Dataset) -> u64 {
    let g = &dataset.graph;
    let mut h = FNV_OFFSET;
    h = fnv_u64(h, g.num_products() as u64);
    h = fnv_u64(h, g.num_attrs() as u64);
    h = fnv_u64(h, g.num_values() as u64);
    for i in 0..g.num_products() {
        h = fnv_str(h, g.title(pge_graph::ProductId(i as u32)));
    }
    for i in 0..g.num_attrs() {
        h = fnv_str(h, g.attr_name(pge_graph::AttrId(i as u16)));
    }
    for i in 0..g.num_values() {
        h = fnv_str(h, g.value_text(pge_graph::ValueId(i as u32)));
    }
    h = fnv_u64(h, dataset.train.len() as u64);
    for t in &dataset.train {
        h = fnv_u64(h, t.product.0 as u64);
        h = fnv_u64(h, t.attr.0 as u64);
        h = fnv_u64(h, t.value.0 as u64);
    }
    h
}

/// A forward-only cursor over the checkpoint payload; every read is
/// bounds-checked so truncation surfaces as `Corrupt`, never a panic.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], PersistError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| PersistError::Corrupt(format!("checkpoint truncated in {what}")))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u32(&mut self, what: &str) -> Result<u32, PersistError> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().unwrap()))
    }

    fn u64(&mut self, what: &str) -> Result<u64, PersistError> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    fn f32s(&mut self, n: usize, what: &str) -> Result<Vec<f32>, PersistError> {
        let raw = self.take(
            n.checked_mul(4).ok_or_else(|| {
                PersistError::Corrupt(format!("checkpoint length overflow in {what}"))
            })?,
            what,
        )?;
        Ok(raw
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }
}

fn push_f32s(out: &mut Vec<u8>, xs: &[f32]) {
    for x in xs {
        out.extend_from_slice(&x.to_le_bytes());
    }
}

impl TrainerState {
    /// Snapshot the live trainer at an epoch boundary. Gradients are
    /// guaranteed zero there (every batch applies and clears them), so
    /// parameters + moments + step are the complete optimizer state.
    #[allow(clippy::too_many_arguments)]
    pub fn capture(
        model: &PgeModel,
        confidence: &ConfidenceStore,
        epochs_done: usize,
        step: u64,
        config_hash: u64,
        data_fingerprint: u64,
        epoch_losses: &[f32],
        backend: &str,
        aux: &[f32],
    ) -> Result<TrainerState, PersistError> {
        let model_snapshot = save_model_binary(model)?;
        let mut clone = model.clone();
        let mut params = clone.encoder.params_mut();
        params.push(clone.relations.param_mut());
        let moments = params
            .iter()
            .map(|p| {
                let (m, v) = p.adam_state();
                MomentRecord {
                    rows: p.value.rows(),
                    cols: p.value.cols(),
                    m: m.as_slice().to_vec(),
                    v: v.as_slice().to_vec(),
                }
            })
            .collect();
        Ok(TrainerState {
            epochs_done,
            step,
            config_hash,
            data_fingerprint,
            backend: backend.to_string(),
            delta_fingerprint: 0,
            windows_done: 0,
            epoch_losses: epoch_losses.to_vec(),
            model_snapshot,
            moments,
            confidence: confidence.scores().to_vec(),
            aux: aux.to_vec(),
        })
    }

    /// Reject a checkpoint taken under a different config or corpus.
    /// The confidence backend is checked *first* (it also feeds the
    /// config hash): warm-starting from a table produced by another
    /// update rule would silently blend two incompatible confidence
    /// semantics, so it gets its own specific error.
    pub fn verify(&self, config_hash: u64, data_fingerprint: u64) -> Result<(), PersistError> {
        if self.config_hash != config_hash {
            return Err(PersistError::Mismatch(format!(
                "checkpoint was written by a run with different training config \
                 (hash {:016x}, this run {:016x}); resume with the original flags \
                 (--threads may differ, everything else must match)",
                self.config_hash, config_hash
            )));
        }
        if self.data_fingerprint != data_fingerprint {
            return Err(PersistError::Mismatch(format!(
                "checkpoint was trained against a different corpus \
                 (fingerprint {:016x}, this dataset {:016x}); confidence scores and \
                 sampling streams are positional, so resuming would corrupt training — \
                 point --data at the original file",
                self.data_fingerprint, data_fingerprint
            )));
        }
        Ok(())
    }

    /// Reject a checkpoint whose confidence table was produced by a
    /// different `--confidence` backend. Run before [`Self::verify`]
    /// so the caller gets the specific story, not the generic
    /// config-hash one.
    pub fn verify_backend(&self, backend: &str) -> Result<(), PersistError> {
        if self.backend != backend {
            return Err(PersistError::Mismatch(format!(
                "checkpoint confidence table was trained with the {:?} backend \
                 but this run selected --confidence {backend:?}; the two update \
                 rules are not interchangeable — warm-start from a checkpoint \
                 trained with the same backend",
                self.backend
            )));
        }
        Ok(())
    }

    /// Rebuild the model exactly as checkpointed: load the embedded
    /// `PGEBIN01` snapshot (CRC-verified) and install the Adam moments
    /// back into every parameter.
    pub fn restore_model(&self, graph: &ProductGraph) -> Result<PgeModel, PersistError> {
        let mut model = load_model_binary(&self.model_snapshot, graph)?;
        {
            let mut params = model.encoder.params_mut();
            params.push(model.relations.param_mut());
            if params.len() != self.moments.len() {
                return Err(PersistError::Corrupt(format!(
                    "checkpoint has {} moment records for {} parameters",
                    self.moments.len(),
                    params.len()
                )));
            }
            for (p, rec) in params.iter_mut().zip(&self.moments) {
                if rec.rows != p.value.rows() || rec.cols != p.value.cols() {
                    return Err(PersistError::Corrupt(format!(
                        "moment shape {}x{} does not match parameter {}x{}",
                        rec.rows,
                        rec.cols,
                        p.value.rows(),
                        p.value.cols()
                    )));
                }
                let (m, v) = p.adam_state_mut();
                m.as_mut_slice().copy_from_slice(&rec.m);
                v.as_mut_slice().copy_from_slice(&rec.v);
            }
        }
        Ok(model)
    }

    /// Serialize: `PGECKPT1`, CRC-32 of the payload, payload.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut p = Vec::with_capacity(self.model_snapshot.len() * 3 + 64);
        p.extend_from_slice(&2u32.to_le_bytes()); // version
        p.extend_from_slice(&self.config_hash.to_le_bytes());
        p.extend_from_slice(&self.data_fingerprint.to_le_bytes());
        p.extend_from_slice(&(self.backend.len() as u32).to_le_bytes());
        p.extend_from_slice(self.backend.as_bytes());
        p.extend_from_slice(&self.delta_fingerprint.to_le_bytes());
        p.extend_from_slice(&(self.windows_done as u32).to_le_bytes());
        p.extend_from_slice(&(self.epochs_done as u32).to_le_bytes());
        p.extend_from_slice(&self.step.to_le_bytes());
        p.extend_from_slice(&(self.epoch_losses.len() as u32).to_le_bytes());
        push_f32s(&mut p, &self.epoch_losses);
        p.extend_from_slice(&(self.model_snapshot.len() as u32).to_le_bytes());
        p.extend_from_slice(&self.model_snapshot);
        p.extend_from_slice(&(self.moments.len() as u32).to_le_bytes());
        for rec in &self.moments {
            p.extend_from_slice(&(rec.rows as u32).to_le_bytes());
            p.extend_from_slice(&(rec.cols as u32).to_le_bytes());
            push_f32s(&mut p, &rec.m);
            push_f32s(&mut p, &rec.v);
        }
        p.extend_from_slice(&(self.confidence.len() as u32).to_le_bytes());
        push_f32s(&mut p, &self.confidence);
        p.extend_from_slice(&(self.aux.len() as u32).to_le_bytes());
        push_f32s(&mut p, &self.aux);
        let mut out = Vec::with_capacity(CHECKPOINT_MAGIC.len() + 4 + p.len());
        out.extend_from_slice(CHECKPOINT_MAGIC);
        out.extend_from_slice(&pge_tensor::crc32(&p).to_le_bytes());
        out.extend_from_slice(&p);
        out
    }

    /// Deserialize, verifying the CRC-32 before trusting a byte.
    pub fn from_bytes(bytes: &[u8]) -> Result<TrainerState, PersistError> {
        let corrupt = |m: &str| PersistError::Corrupt(m.to_string());
        let rest = bytes
            .strip_prefix(&CHECKPOINT_MAGIC[..])
            .ok_or_else(|| corrupt("missing PGECKPT1 magic"))?;
        if rest.len() < 4 {
            return Err(corrupt("checkpoint truncated before checksum"));
        }
        let (crc_bytes, payload) = rest.split_at(4);
        let stored = u32::from_le_bytes(crc_bytes.try_into().unwrap());
        let computed = pge_tensor::crc32(payload);
        if stored != computed {
            return Err(PersistError::Corrupt(format!(
                "checkpoint CRC-32 mismatch (stored {stored:08x}, computed {computed:08x}) — \
                 the file is truncated or bit-flipped; restart training from scratch \
                 or restore the checkpoint from backup"
            )));
        }
        let mut c = Cursor {
            buf: payload,
            pos: 0,
        };
        if c.u32("version")? != 2 {
            return Err(corrupt("unsupported checkpoint version"));
        }
        let config_hash = c.u64("config hash")?;
        let data_fingerprint = c.u64("data fingerprint")?;
        let backend_len = c.u32("backend name length")? as usize;
        if backend_len > 64 {
            return Err(corrupt("implausible backend name length"));
        }
        let backend = std::str::from_utf8(c.take(backend_len, "backend name")?)
            .map_err(|_| corrupt("backend name is not UTF-8"))?
            .to_string();
        let delta_fingerprint = c.u64("delta fingerprint")?;
        let windows_done = c.u32("window counter")? as usize;
        let epochs_done = c.u32("epoch counter")? as usize;
        let step = c.u64("step counter")?;
        let n_losses = c.u32("loss count")? as usize;
        let epoch_losses = c.f32s(n_losses, "loss history")?;
        let snap_len = c.u32("snapshot length")? as usize;
        let model_snapshot = c.take(snap_len, "model snapshot")?.to_vec();
        let n_params = c.u32("parameter count")? as usize;
        let mut moments = Vec::with_capacity(n_params.min(1024));
        for _ in 0..n_params {
            let rows = c.u32("moment rows")? as usize;
            let cols = c.u32("moment cols")? as usize;
            let n = rows
                .checked_mul(cols)
                .ok_or_else(|| corrupt("moment shape overflow"))?;
            let m = c.f32s(n, "first moments")?;
            let v = c.f32s(n, "second moments")?;
            moments.push(MomentRecord { rows, cols, m, v });
        }
        let n_conf = c.u32("confidence count")? as usize;
        let confidence = c.f32s(n_conf, "confidence table")?;
        let n_aux = c.u32("aux count")? as usize;
        let aux = c.f32s(n_aux, "backend aux state")?;
        if c.pos != payload.len() {
            return Err(corrupt("trailing bytes after backend aux state"));
        }
        Ok(TrainerState {
            epochs_done,
            step,
            config_hash,
            data_fingerprint,
            backend,
            delta_fingerprint,
            windows_done,
            epoch_losses,
            model_snapshot,
            moments,
            confidence,
            aux,
        })
    }

    /// Durably replace the checkpoint in `dir` (created if missing):
    /// temp file, fsync, rename. Returns the checkpoint size in bytes.
    pub fn store(&self, dir: &Path) -> Result<u64, PersistError> {
        self.store_as(dir, CHECKPOINT_FILE)
    }

    /// [`Self::store`] under an explicit file name — the incremental
    /// trainer keeps its window checkpoints next to (not on top of)
    /// the base run's `trainer.ckpt`.
    pub fn store_as(&self, dir: &Path, file: &str) -> Result<u64, PersistError> {
        let io = |what: &str, e: std::io::Error| PersistError::Io(format!("{what}: {e}"));
        fs::create_dir_all(dir).map_err(|e| io(&format!("create {}", dir.display()), e))?;
        let bytes = self.to_bytes();
        let tmp = dir.join(format!("{file}.tmp"));
        let final_path = dir.join(file);
        let write = || -> std::io::Result<()> {
            let mut f = fs::File::create(&tmp)?;
            std::io::Write::write_all(&mut f, &bytes)?;
            f.sync_all()?;
            fs::rename(&tmp, &final_path)
        };
        write().map_err(|e| io(&format!("write {}", final_path.display()), e))?;
        Ok(bytes.len() as u64)
    }

    /// Load the checkpoint from `dir`. A missing file is an error —
    /// resume was requested, so silently starting over would discard
    /// the caller's intent.
    pub fn load(dir: &Path) -> Result<TrainerState, PersistError> {
        TrainerState::load_as(dir, CHECKPOINT_FILE)
    }

    /// [`Self::load`] under an explicit file name.
    pub fn load_as(dir: &Path, file: &str) -> Result<TrainerState, PersistError> {
        let path = dir.join(file);
        let bytes = fs::read(&path).map_err(|e| {
            if e.kind() == std::io::ErrorKind::NotFound {
                PersistError::Io(format!(
                    "no training checkpoint at {} — run without --resume first",
                    path.display()
                ))
            } else {
                PersistError::Io(format!("read {}: {e}", path.display()))
            }
        })?;
        TrainerState::from_bytes(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trainer::{train_pge, PgeConfig};
    use pge_graph::{Dataset, ProductGraph};

    fn tiny_dataset() -> Dataset {
        let mut g = ProductGraph::new();
        let mut train = Vec::new();
        for i in 0..20 {
            let flavor = if i % 2 == 0 { "spicy" } else { "sweet" };
            train.push(g.add_fact(&format!("brand{i} {flavor} chips {i}"), "flavor", flavor));
        }
        Dataset::new(g, train, vec![], vec![])
    }

    fn sample_state() -> (TrainerState, Dataset) {
        let d = tiny_dataset();
        let cfg = PgeConfig {
            epochs: 2,
            ..PgeConfig::tiny()
        };
        let out = train_pge(&d, &cfg);
        let state = TrainerState::capture(
            &out.model,
            &out.confidence,
            2,
            7,
            config_hash(&cfg),
            data_fingerprint(&d),
            &out.epoch_losses,
            cfg.confidence.name(),
            &[],
        )
        .unwrap();
        (state, d)
    }

    #[test]
    fn byte_round_trip_is_lossless() {
        let (state, _) = sample_state();
        let bytes = state.to_bytes();
        let back = TrainerState::from_bytes(&bytes).unwrap();
        assert_eq!(back, state);
        // Re-serialization is byte-stable.
        assert_eq!(back.to_bytes(), bytes);
    }

    #[test]
    fn restore_model_reinstalls_parameters_and_moments() {
        let (state, d) = sample_state();
        let restored = state.restore_model(&d.graph).unwrap();
        let reloaded = save_model_binary(&restored).unwrap();
        assert_eq!(reloaded, state.model_snapshot);
        // Moments survived the round trip (training leaves them
        // nonzero, so an all-zero restore would be a silent bug).
        let mut clone = restored.clone();
        let mut params = clone.encoder.params_mut();
        params.push(clone.relations.param_mut());
        let some_nonzero = params.iter().any(|p| {
            let (m, _) = p.adam_state();
            m.as_slice().iter().any(|&x| x != 0.0)
        });
        assert!(some_nonzero, "restored moments are all zero");
        for (p, rec) in params.iter().zip(&state.moments) {
            let (m, v) = p.adam_state();
            assert_eq!(m.as_slice(), &rec.m[..]);
            assert_eq!(v.as_slice(), &rec.v[..]);
        }
    }

    #[test]
    fn every_truncation_and_bit_flip_is_rejected() {
        let (state, _) = sample_state();
        let bytes = state.to_bytes();
        for cut in [0, 3, 9, 20, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                TrainerState::from_bytes(&bytes[..cut]).is_err(),
                "truncation at {cut} must not load"
            );
        }
        for ix in [12, bytes.len() / 3, bytes.len() - 2] {
            let mut bad = bytes.clone();
            bad[ix] ^= 0x40;
            match TrainerState::from_bytes(&bad) {
                Err(PersistError::Corrupt(msg)) => {
                    assert!(msg.contains("CRC-32"), "flip at {ix}: {msg}")
                }
                other => panic!("flip at {ix}: expected CRC failure, got {other:?}"),
            }
        }
    }

    #[test]
    fn verify_rejects_config_and_corpus_mismatches() {
        let (state, d) = sample_state();
        let cfg = PgeConfig {
            epochs: 2,
            ..PgeConfig::tiny()
        };
        state
            .verify(config_hash(&cfg), data_fingerprint(&d))
            .unwrap();
        let other_cfg = PgeConfig {
            epochs: 2,
            lr: 0.123,
            ..PgeConfig::tiny()
        };
        assert!(matches!(
            state.verify(config_hash(&other_cfg), data_fingerprint(&d)),
            Err(PersistError::Mismatch(_))
        ));
        let mut other_data = tiny_dataset();
        other_data
            .graph
            .add_fact("new brand cola", "flavor", "cola");
        assert!(matches!(
            state.verify(config_hash(&cfg), data_fingerprint(&other_data)),
            Err(PersistError::Mismatch(_))
        ));
    }

    #[test]
    fn config_hash_ignores_threads_but_not_other_knobs() {
        let base = PgeConfig::tiny();
        let h = config_hash(&base);
        assert_eq!(
            h,
            config_hash(&PgeConfig {
                threads: 7,
                ..PgeConfig::tiny()
            }),
            "threads must not affect the hash — resume may change it"
        );
        for other in [
            PgeConfig {
                seed: 99,
                ..PgeConfig::tiny()
            },
            PgeConfig {
                epochs: 3,
                ..PgeConfig::tiny()
            },
            PgeConfig {
                noise_aware: false,
                ..PgeConfig::tiny()
            },
            PgeConfig {
                sampling: pge_graph::SamplingMode::PerAttribute,
                ..PgeConfig::tiny()
            },
            PgeConfig {
                confidence: crate::confidence::ConfidenceBackend::Cca,
                ..PgeConfig::tiny()
            },
        ] {
            assert_ne!(h, config_hash(&other), "{other:?}");
        }
    }

    #[test]
    fn verify_backend_rejects_cross_backend_warm_start() {
        let (state, _) = sample_state();
        assert_eq!(state.backend, "pge");
        state.verify_backend("pge").unwrap();
        match state.verify_backend("cca") {
            Err(PersistError::Mismatch(msg)) => {
                assert!(msg.contains("pge") && msg.contains("cca"), "{msg}")
            }
            other => panic!("expected Mismatch, got {other:?}"),
        }
    }

    #[test]
    fn incremental_metadata_round_trips() {
        let (mut state, _) = sample_state();
        state.delta_fingerprint = 0xdead_beef_1234_5678;
        state.windows_done = 3;
        state.aux = vec![0.5, -1.25, 7.0];
        let back = TrainerState::from_bytes(&state.to_bytes()).unwrap();
        assert_eq!(back, state);
        assert_eq!(back.delta_fingerprint, 0xdead_beef_1234_5678);
        assert_eq!(back.windows_done, 3);
        assert_eq!(back.aux, vec![0.5, -1.25, 7.0]);
    }

    #[test]
    fn data_fingerprint_tracks_text_and_split() {
        let d = tiny_dataset();
        let fp = data_fingerprint(&d);
        assert_eq!(fp, data_fingerprint(&tiny_dataset()), "deterministic");
        let mut fewer = tiny_dataset();
        fewer.train.pop();
        assert_ne!(fp, data_fingerprint(&fewer));
        let mut renamed = ProductGraph::new();
        let mut train = Vec::new();
        for i in 0..20 {
            let flavor = if i % 2 == 0 { "spicy" } else { "sweet" };
            // One title differs by a single character.
            let brand = if i == 7 { "brand7x" } else { "brand" };
            train.push(renamed.add_fact(
                &format!("{brand}{i} {flavor} chips {i}"),
                "flavor",
                flavor,
            ));
        }
        let renamed = Dataset::new(renamed, train, vec![], vec![]);
        assert_ne!(fp, data_fingerprint(&renamed));
    }

    #[test]
    fn store_and_load_round_trip_atomically() {
        let (state, _) = sample_state();
        let dir = std::env::temp_dir().join(format!("pge-train-ckpt-{}", std::process::id()));
        let bytes = state.store(&dir).unwrap();
        assert!(bytes > 0);
        assert!(!dir.join(format!("{CHECKPOINT_FILE}.tmp")).exists());
        let back = TrainerState::load(&dir).unwrap();
        assert_eq!(back, state);
        // A missing checkpoint is a clear error, not a silent restart.
        let empty =
            std::env::temp_dir().join(format!("pge-train-ckpt-none-{}", std::process::id()));
        match TrainerState::load(&empty) {
            Err(PersistError::Io(msg)) => assert!(msg.contains("no training checkpoint")),
            other => panic!("expected Io error, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
