//! Embedding caching for inference paths.
//!
//! Encoding an entity is by far the most expensive step of scoring a
//! triple — the CNN/BERT forward pass dwarfs the O(dim) scorer — and
//! real workloads are heavily skewed toward a small set of hot titles
//! and values. [`EmbeddingCache`] is a sharded LRU keyed by the
//! *exact* entity text in front of any [`EmbeddingProvider`].
//!
//! Consistency invariant: because the key is the exact text and the
//! encoder is a pure function of that text, a cache hit returns the
//! byte-identical vector the provider would have produced. Caching
//! can therefore never change a score, only its latency.

use crate::api::ErrorDetector;
use crate::model::PgeModel;
use parking_lot::RwLock;
use pge_graph::{AttrId, ProductGraph, Triple};
use pge_obs::AtomicHistogram;
use pge_tensor::FxHashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Anything that can turn entity text into an embedding vector.
///
/// [`PgeModel`] is the canonical provider; [`CachedModel`] layers an
/// [`EmbeddingCache`] over it without the call sites caring which
/// they hold.
pub trait EmbeddingProvider: Sync {
    fn embed(&self, text: &str) -> Vec<f32>;
}

impl EmbeddingProvider for PgeModel {
    fn embed(&self, text: &str) -> Vec<f32> {
        self.embed_text(text)
    }
}

const SHARDS: usize = 16;

struct Entry {
    vec: Vec<f32>,
    /// Logical clock of the last access; eviction removes the
    /// smallest. Atomic so the read-locked hit path can bump it.
    stamp: AtomicU64,
}

/// Sharded LRU text → embedding cache.
///
/// Reads take a shard read lock and bump the entry's access stamp;
/// only misses take the write lock. A capacity of 0 disables caching
/// entirely (every lookup is a pass-through miss).
pub struct EmbeddingCache {
    shards: Vec<RwLock<FxHashMap<String, Entry>>>,
    /// Per-shard capacities summing to exactly the requested total.
    shard_caps: Vec<usize>,
    clock: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    /// Optional latency sink for encoder forward passes. Only the
    /// miss path pays the timing cost (two `Instant` reads around a
    /// CNN forward, i.e. noise); the hit path never touches it.
    encode_hist: OnceLock<Arc<AtomicHistogram>>,
}

impl EmbeddingCache {
    /// Cache holding at most `capacity` embeddings across all shards.
    pub fn new(capacity: usize) -> Self {
        // Distribute the budget so Σ shard_caps == capacity. The old
        // `capacity.div_ceil(SHARDS)` per-shard cap let the cache hold
        // up to SHARDS-1 entries more than requested. Shards with a
        // zero quota act as pass-throughs.
        let shard_caps = (0..SHARDS)
            .map(|i| capacity / SHARDS + usize::from(i < capacity % SHARDS))
            .collect();
        EmbeddingCache {
            shards: (0..SHARDS)
                .map(|_| RwLock::new(FxHashMap::default()))
                .collect(),
            shard_caps,
            clock: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            encode_hist: OnceLock::new(),
        }
    }

    /// Record every encoder forward pass (cache miss) into `hist` —
    /// the `pge_serve_stage_encode_seconds` feed. First caller wins;
    /// later installs are ignored.
    pub fn install_encode_histogram(&self, hist: Arc<AtomicHistogram>) {
        let _ = self.encode_hist.set(hist);
    }

    fn shard_idx(&self, text: &str) -> usize {
        // FNV-1a; shard count is fixed so the modulo bias is moot.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in text.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        (h % SHARDS as u64) as usize
    }

    /// The embedding for `text`, computing it with `f` on a miss.
    pub fn get_or_compute(&self, text: &str, f: impl FnOnce() -> Vec<f32>) -> Vec<f32> {
        let mut out = Vec::new();
        self.copy_or_compute(text, &mut out, f);
        out
    }

    /// Allocation-free variant of [`Self::get_or_compute`]: the
    /// embedding is copied into `out` (cleared first), reusing its
    /// backing buffer. The bulk-scan hot path runs at > 90% hit rate,
    /// where the `Vec` clone per lookup was two avoidable allocations
    /// per scanned row; workers hold one scratch buffer per slot
    /// instead.
    pub fn copy_or_compute(&self, text: &str, out: &mut Vec<f32>, f: impl FnOnce() -> Vec<f32>) {
        out.clear();
        let idx = self.shard_idx(text);
        let cap = self.shard_caps[idx];
        if cap == 0 {
            self.misses.fetch_add(1, Ordering::Relaxed);
            out.extend_from_slice(&self.timed_compute(f));
            return;
        }
        let shard = &self.shards[idx];
        {
            let map = shard.read();
            if let Some(e) = map.get(text) {
                e.stamp.store(
                    self.clock.fetch_add(1, Ordering::Relaxed),
                    Ordering::Relaxed,
                );
                self.hits.fetch_add(1, Ordering::Relaxed);
                out.extend_from_slice(&e.vec);
                return;
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let vec = self.timed_compute(f);
        out.extend_from_slice(&vec);
        let mut map = shard.write();
        // A racing thread may have inserted meanwhile; keep whichever
        // is present (the vectors are identical by construction).
        if !map.contains_key(text) {
            if map.len() >= cap {
                Self::evict_batch(&mut map, cap);
            }
            map.insert(
                text.to_string(),
                Entry {
                    vec,
                    stamp: AtomicU64::new(self.clock.fetch_add(1, Ordering::Relaxed)),
                },
            );
        }
    }

    /// Run `f` over a cached embedding in place, or return `None` if
    /// `text` is absent (or uncacheable). The scan worker's hit path —
    /// the > 90% steady state — scores straight off the cache entry
    /// instead of copying dim floats into scratch first; the floats
    /// are read exactly once either way, but the copy's store traffic
    /// was measurable at a million rows per second.
    pub fn with_cached<T>(&self, text: &str, f: impl FnOnce(&[f32]) -> T) -> Option<T> {
        let idx = self.shard_idx(text);
        if self.shard_caps[idx] == 0 {
            return None;
        }
        let map = self.shards[idx].read();
        let e = map.get(text)?;
        e.stamp.store(
            self.clock.fetch_add(1, Ordering::Relaxed),
            Ordering::Relaxed,
        );
        self.hits.fetch_add(1, Ordering::Relaxed);
        Some(f(&e.vec))
    }

    /// Count a lookup served from a caller-held memo of a cached
    /// embedding (see [`ScoreScratch`]). Keeps the hit/miss counters
    /// meaning "lookups that did / did not run the encoder" even when
    /// the serving copy lives outside the shards.
    pub(crate) fn note_memo_hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Evict the coldest ~1/8 of a full shard in one pass.
    ///
    /// Evicting a single entry per miss costs a full `min_by_key`
    /// scan of the shard — O(shard) per miss, which turned the scan
    /// pipeline's steady state above cache capacity into an accidental
    /// quadratic (a 1M-row scan spent more time scanning stamps than
    /// running the CNN). A batched selection pays one O(shard) pass
    /// per `cap/8` misses instead, amortizing to a handful of stamp
    /// loads per insert while evicting nearly the same cold set strict
    /// LRU would. Eviction policy only ever changes latency, never
    /// scores (see the module invariant), so the batch is free to be
    /// approximate.
    fn evict_batch(map: &mut FxHashMap<String, Entry>, cap: usize) {
        let batch = (cap / 8).max(1).min(map.len());
        // Select the batch-th coldest stamp, then drop everything at or
        // below it with one `retain` pass — no key clones, no per-victim
        // hash lookups. Ties can push the evicted count past `batch`;
        // the policy is approximate LRU either way.
        let mut stamps: Vec<u64> = map
            .values()
            .map(|e| e.stamp.load(Ordering::Relaxed))
            .collect();
        let (_, &mut threshold, _) = stamps.select_nth_unstable(batch - 1);
        map.retain(|_, e| e.stamp.load(Ordering::Relaxed) > threshold);
    }

    /// Run the encoder, observing its wall time when a histogram is
    /// installed.
    fn timed_compute(&self, f: impl FnOnce() -> Vec<f32>) -> Vec<f32> {
        match self.encode_hist.get() {
            Some(h) => {
                let start = Instant::now();
                let vec = f();
                h.observe(start.elapsed().as_secs_f64());
                vec
            }
            None => f(),
        }
    }

    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of embeddings currently resident.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A [`PgeModel`] scoring through an [`EmbeddingCache`].
///
/// Implements [`ErrorDetector`], so batch detection and evaluation
/// (`Detector::fit`, `plausibility_parallel`, ...) transparently gain
/// the cache: graph entities are looked up by their text, which
/// repeats heavily across triples of the same product.
pub struct CachedModel<'a> {
    model: &'a PgeModel,
    cache: &'a EmbeddingCache,
    /// One [`crate::score::PreparedRelation`] per attribute (relations
    /// are few and closed-world): RotatE's per-dimension trigonometry
    /// is paid once here instead of once per scored row. Prepared
    /// scores are bit-identical to [`crate::score::Scorer::score`].
    prepared: Vec<crate::score::PreparedRelation>,
    /// Attribute name → id. [`PgeModel::lookup_attr`] is a linear
    /// string scan, fine for occasional calls but measurable once per
    /// scanned row; this index makes it one Fx hash.
    attr_index: FxHashMap<String, AttrId>,
}

/// Reusable buffers for the allocation-free scoring path
/// ([`CachedModel::score_fact_scratch`]). One per worker/thread.
#[derive(Default)]
pub struct ScoreScratch {
    h: Vec<f32>,
    v: Vec<f32>,
    /// Title whose embedding currently sits in `h`, tagged with the
    /// owning [`CachedModel`] (empty title = nothing memoized). Scan
    /// input arrives grouped by product, so one title repeats across
    /// several consecutive rows; reusing the L1-warm copy in `h`
    /// skips the shared-cache probe and cold embedding read that
    /// dominate the hit path at scale.
    memo_title: String,
    memo_owner: usize,
}

impl<'a> CachedModel<'a> {
    pub fn new(model: &'a PgeModel, cache: &'a EmbeddingCache) -> Self {
        let scorer = model.scorer();
        let prepared = (0..model.attr_names().len())
            .map(|i| scorer.prepare(model.relation(AttrId(i as u16))))
            .collect();
        let attr_index = model
            .attr_names()
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), AttrId(i as u16)))
            .collect();
        CachedModel {
            model,
            cache,
            prepared,
            attr_index,
        }
    }

    pub fn model(&self) -> &PgeModel {
        self.model
    }

    pub fn cache(&self) -> &EmbeddingCache {
        self.cache
    }

    /// Cached [`PgeModel::score_fact`].
    pub fn score_fact(&self, title: &str, attr: AttrId, value: &str) -> f32 {
        let h = self.embed(title);
        let v = self.embed(value);
        self.prepared[attr.0 as usize].score(&h, &v)
    }

    /// Cached [`PgeModel::score_text_triple`].
    pub fn score_text_triple(&self, title: &str, attr: &str, value: &str) -> Option<f32> {
        self.attr_index
            .get(attr)
            .map(|&a| self.score_fact(title, a, value))
    }

    /// [`Self::score_fact`] without per-call allocations: embeddings
    /// land in the caller's [`ScoreScratch`] via
    /// [`EmbeddingCache::copy_or_compute`]. Bit-identical to the
    /// allocating path.
    pub fn score_fact_scratch(
        &self,
        title: &str,
        attr: AttrId,
        value: &str,
        s: &mut ScoreScratch,
    ) -> f32 {
        let prep = &self.prepared[attr.0 as usize];
        // `h` is bit-for-bit the cached embedding whether it was
        // copied out just now or memoized from the previous row, and
        // `score` runs on the same floats either way — so every branch
        // below is bit-identical to the plain two-copy path.
        let owner = self as *const Self as usize;
        if s.memo_owner == owner && !s.memo_title.is_empty() && s.memo_title == title {
            self.cache.note_memo_hit();
        } else {
            self.cache
                .copy_or_compute(title, &mut s.h, || self.model.embed_text(title));
            s.memo_title.clear();
            s.memo_title.push_str(title);
            s.memo_owner = owner;
        }
        if let Some(score) = self.cache.with_cached(value, |v| prep.score(&s.h, v)) {
            return score;
        }
        self.cache
            .copy_or_compute(value, &mut s.v, || self.model.embed_text(value));
        prep.score(&s.h, &s.v)
    }

    /// [`Self::score_text_triple`] through a [`ScoreScratch`] — the
    /// scan-worker hot path.
    pub fn score_text_triple_scratch(
        &self,
        title: &str,
        attr: &str,
        value: &str,
        s: &mut ScoreScratch,
    ) -> Option<f32> {
        self.attr_index
            .get(attr)
            .map(|&a| self.score_fact_scratch(title, a, value, s))
    }
}

impl EmbeddingProvider for CachedModel<'_> {
    fn embed(&self, text: &str) -> Vec<f32> {
        self.cache
            .get_or_compute(text, || self.model.embed_text(text))
    }
}

impl ErrorDetector for CachedModel<'_> {
    fn name(&self) -> String {
        self.model.name()
    }

    fn plausibility(&self, graph: &ProductGraph, t: &Triple) -> f32 {
        self.score_fact(graph.title(t.product), t.attr, graph.value_text(t.value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::plausibility_parallel;
    use std::sync::atomic::AtomicUsize;

    fn counted(counter: &AtomicUsize) -> impl Fn() -> Vec<f32> + '_ {
        move || {
            counter.fetch_add(1, Ordering::SeqCst);
            vec![1.0, 2.0]
        }
    }

    #[test]
    fn hit_skips_compute_and_counts() {
        let c = EmbeddingCache::new(64);
        let calls = AtomicUsize::new(0);
        assert_eq!(c.get_or_compute("apple", counted(&calls)), vec![1.0, 2.0]);
        assert_eq!(c.get_or_compute("apple", counted(&calls)), vec![1.0, 2.0]);
        assert_eq!(calls.load(Ordering::SeqCst), 1);
        assert_eq!((c.hits(), c.misses()), (1, 1));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let c = EmbeddingCache::new(0);
        let calls = AtomicUsize::new(0);
        c.get_or_compute("apple", counted(&calls));
        c.get_or_compute("apple", counted(&calls));
        assert_eq!(calls.load(Ordering::SeqCst), 2);
        assert_eq!(c.hits(), 0);
        assert!(c.is_empty());
    }

    #[test]
    fn evicts_least_recently_used_within_shard() {
        // Single-slot shards: any two keys in the same shard contend.
        let c = EmbeddingCache::new(1);
        let mut texts: Vec<String> = (0..40).map(|i| format!("key{i}")).collect();
        // Find two keys in the same shard (the one holding the whole
        // capacity-1 budget — quota-0 shards pass through, which also
        // yields one compute per lookup).
        let shard_of = |c: &EmbeddingCache, t: &str| c.shard_idx(t);
        let first = texts.remove(0);
        let second = texts
            .into_iter()
            .find(|t| shard_of(&c, t) == shard_of(&c, &first))
            .expect("40 keys over 16 shards must collide");
        let calls = AtomicUsize::new(0);
        c.get_or_compute(&first, counted(&calls));
        c.get_or_compute(&second, counted(&calls)); // evicts `first`
        c.get_or_compute(&first, counted(&calls)); // recompute
        assert_eq!(calls.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn resident_count_never_exceeds_capacity() {
        // Regression: the per-shard cap used to round up
        // (`capacity.div_ceil(SHARDS)`), so e.g. capacity 17 allowed
        // 2 entries in all 16 shards = 32 resident embeddings.
        for capacity in [1, 5, 16, 17, 31, 100] {
            let c = EmbeddingCache::new(capacity);
            let calls = AtomicUsize::new(0);
            for i in 0..capacity * 8 {
                c.get_or_compute(&format!("text{i}"), counted(&calls));
            }
            assert!(
                c.len() <= capacity,
                "capacity {capacity} holds {} entries",
                c.len()
            );
        }
    }

    #[test]
    fn recency_protects_hot_entries() {
        let c = EmbeddingCache::new(SHARDS * 2); // two slots per shard
        let shard_of = |t: &str| c.shard_idx(t);
        let keys: Vec<String> = (0..100).map(|i| format!("k{i}")).collect();
        let target = shard_of(&keys[0]);
        let mut same: Vec<&String> = keys.iter().filter(|k| shard_of(k) == target).collect();
        assert!(same.len() >= 3, "need 3 colliding keys");
        same.truncate(3);
        let calls = AtomicUsize::new(0);
        c.get_or_compute(same[0], counted(&calls));
        c.get_or_compute(same[1], counted(&calls));
        c.get_or_compute(same[0], counted(&calls)); // refresh [0]
        c.get_or_compute(same[2], counted(&calls)); // evicts [1], not [0]
        c.get_or_compute(same[0], counted(&calls)); // still cached
        assert_eq!(calls.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn encode_histogram_observes_misses_only() {
        let c = EmbeddingCache::new(64);
        let h = Arc::new(AtomicHistogram::exponential(1e-6, 2.0, 20));
        c.install_encode_histogram(h.clone());
        let calls = AtomicUsize::new(0);
        c.get_or_compute("apple", counted(&calls)); // miss → observed
        c.get_or_compute("apple", counted(&calls)); // hit → not observed
        c.get_or_compute("pear", counted(&calls)); // miss → observed
        assert_eq!(h.count(), 2);
        // Later installs are ignored; the first histogram keeps feeding.
        let other = Arc::new(AtomicHistogram::exponential(1e-6, 2.0, 20));
        c.install_encode_histogram(other.clone());
        c.get_or_compute("plum", counted(&calls));
        assert_eq!(h.count(), 3);
        assert_eq!(other.count(), 0);
    }

    #[test]
    fn concurrent_access_is_consistent() {
        let c = EmbeddingCache::new(128);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for i in 0..200 {
                        let text = format!("t{}", i % 20);
                        let v = c.get_or_compute(&text, || vec![i as f32 % 20.0]);
                        assert_eq!(v.len(), 1);
                    }
                });
            }
        });
        assert!(c.hits() + c.misses() == 8 * 200);
        assert!(c.len() <= 20);
    }

    // CachedModel equivalence against the raw model.
    fn tiny_setup() -> (ProductGraph, PgeModel) {
        use crate::encoder::TextEncoder;
        use crate::score::{ScoreKind, Scorer};
        use pge_nn::CnnConfig;
        use pge_text::{tokenize, Vocab};
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        let mut g = ProductGraph::new();
        g.add_fact("spicy tortilla chips", "flavor", "spicy");
        g.add_fact("sweet honey granola", "flavor", "sweet");
        g.add_fact("sweet honey granola", "grain", "oats");
        let mut vocab = Vocab::new();
        for i in 0..g.num_products() {
            for w in tokenize(g.title(pge_graph::ProductId(i as u32))) {
                vocab.add(&w);
            }
        }
        for i in 0..g.num_values() {
            for w in tokenize(g.value_text(pge_graph::ValueId(i as u32))) {
                vocab.add(&w);
            }
        }
        let mut rng = StdRng::seed_from_u64(7);
        let words = pge_nn::Embedding::new(&mut rng, vocab.len(), 8);
        let enc = TextEncoder::cnn(
            &mut rng,
            CnnConfig {
                vocab: vocab.len(),
                word_dim: 8,
                widths: vec![1, 2],
                filters_per_width: 4,
                out_dim: 6,
                max_len: 12,
            },
            words,
        );
        let scorer = Scorer::new(ScoreKind::TransE, 4.0);
        let relations = pge_nn::Embedding::new_xavier(&mut rng, g.num_attrs(), scorer.rel_dim(6));
        let model = PgeModel::new(vocab, enc, relations, scorer, &g);
        (g, model)
    }

    #[test]
    fn cached_scores_are_bit_identical() {
        let (g, model) = tiny_setup();
        let cache = EmbeddingCache::new(256);
        let cm = CachedModel::new(&model, &cache);
        for t in g.triples() {
            let raw = model.score_triple(t);
            // Twice: once populating, once from cache.
            assert_eq!(cm.plausibility(&g, t), raw);
            assert_eq!(cm.plausibility(&g, t), raw);
        }
        assert!(cache.hits() > 0, "repeat scoring must hit the cache");
        let st = cm.score_text_triple("spicy tortilla chips", "flavor", "spicy");
        assert_eq!(
            st,
            model.score_text_triple("spicy tortilla chips", "flavor", "spicy")
        );
        assert_eq!(cm.score_text_triple("x", "nope", "y"), None);
    }

    #[test]
    fn scratch_scoring_bit_identical_to_allocating_path() {
        let (g, model) = tiny_setup();
        let cache = EmbeddingCache::new(256);
        let cm = CachedModel::new(&model, &cache);
        let mut scratch = ScoreScratch::default();
        for t in g.triples() {
            let title = g.title(t.product);
            let value = g.value_text(t.value);
            let alloc = cm.score_fact(title, t.attr, value);
            // Twice: once with cold scratch, once with warm buffers.
            for _ in 0..2 {
                assert_eq!(
                    cm.score_fact_scratch(title, t.attr, value, &mut scratch),
                    alloc
                );
            }
            assert_eq!(alloc, model.score_triple(t), "cache must not alter scores");
        }
        assert_eq!(
            cm.score_text_triple_scratch("x", "nope", "y", &mut scratch),
            None
        );
    }

    #[test]
    fn cached_model_works_under_plausibility_parallel() {
        let (g, model) = tiny_setup();
        let cache = EmbeddingCache::new(256);
        let cm = CachedModel::new(&model, &cache);
        let triples: Vec<Triple> = g.triples().iter().cycle().take(200).copied().collect();
        let raw: Vec<f32> = triples.iter().map(|t| model.score_triple(t)).collect();
        let cached = plausibility_parallel(&cm, &g, &triples, 4);
        assert_eq!(raw, cached);
    }
}
