//! The noise-aware mechanism (§3.3): per-triple learnable confidence.
//!
//! Each training triple `(t,a,v)` carries a confidence `C ∈ [0,1]`.
//! The relaxed objective of Eq. (6) is
//!
//! ```text
//! L = Σ C·L_triple + α Σ (1 − C) + β Σ (1 − C² − (1−C)²)
//! ```
//!
//! Noting `1 − C² − (1−C)² = 2C(1−C)`, the β term penalizes
//! indecision (maximal at C = ½), polarizing C toward {0,1}, while α
//! prices marking a triple down. The gradient w.r.t. one C is
//! `∂L/∂C = L_triple − α + β(2 − 4C)`.
//!
//! # Selectable backends
//!
//! *How* the per-batch training signal turns into a confidence update
//! is a [`ConfidenceUpdater`] backend selected by `--confidence`:
//!
//! * [`ConfidenceBackend::Pge`] (default) is the paper's Eq. (6) SGD
//!   step above, **bit-identical** to the historical hard-coded path —
//!   it consumes only `(index, triple_loss)` and performs the exact
//!   same float operations in the same order.
//! * [`ConfidenceBackend::Cca`] adapts confidence contrastively (after
//!   CCA, Liu et al.): each update blends the InfoNCE win probability
//!   of the positive against its sampled negatives with the cosine
//!   agreement between the triple's value embedding and a cached
//!   per-attribute neighbor centroid (an EMA updated in deterministic
//!   lane order), so confidence tracks *neighborhood consensus* rather
//!   than raw loss magnitude. Its centroid cache is auxiliary state
//!   that checkpoints alongside the confidence table.

/// Confidence scores for a training set, updated by SGD alongside the
/// embedding parameters.
#[derive(Clone, Debug)]
pub struct ConfidenceStore {
    c: Vec<f32>,
    /// Sparsity price α of Eq. (4): larger α makes down-weighting
    /// costlier, so fewer triples are marked down.
    pub alpha: f32,
    /// Polarization strength β of Eq. (6).
    pub beta: f32,
    /// SGD step size for confidence updates.
    pub lr: f32,
}

impl ConfidenceStore {
    /// All-confident initialization (C = 1 for every triple).
    pub fn new(n: usize, alpha: f32, beta: f32, lr: f32) -> Self {
        ConfidenceStore {
            c: vec![1.0; n],
            alpha,
            beta,
            lr,
        }
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.c.len()
    }

    pub fn is_empty(&self) -> bool {
        self.c.is_empty()
    }

    /// Confidence of training triple `i`.
    #[inline]
    pub fn get(&self, i: usize) -> f32 {
        self.c[i]
    }

    /// All confidences (Fig. 5 histograms).
    pub fn scores(&self) -> &[f32] {
        &self.c
    }

    /// Overwrite every confidence score from a checkpoint. Fails when
    /// the checkpoint was taken against a different training set size
    /// — the scores are positional, so a length mismatch means the
    /// corpus changed underneath the checkpoint.
    pub fn restore_scores(&mut self, scores: &[f32]) -> Result<(), String> {
        if scores.len() != self.c.len() {
            return Err(format!(
                "confidence table has {} entries but the training set has {} triples",
                scores.len(),
                self.c.len()
            ));
        }
        self.c.copy_from_slice(scores);
        Ok(())
    }

    /// One SGD step on `C_i` given that triple's current loss
    /// `L_triple`; clamps back into `[0,1]` (the relaxation of
    /// Eq. (5) keeps C in the unit interval).
    #[inline]
    pub fn update(&mut self, i: usize, triple_loss: f32) {
        let c = self.c[i];
        let grad = triple_loss - self.alpha + self.beta * (2.0 - 4.0 * c);
        self.c[i] = (c - self.lr * grad).clamp(0.0, 1.0);
    }

    /// Overwrite one score directly (clamped). Backends other than the
    /// Eq. (6) SGD step use this, as does the incremental trainer when
    /// a retraction pins a triple's confidence to zero.
    #[inline]
    pub fn set(&mut self, i: usize, value: f32) {
        self.c[i] = value.clamp(0.0, 1.0);
    }

    /// Append one all-confident entry — how the incremental trainer
    /// grows the table when a delta window adds training triples.
    pub fn push_default(&mut self) {
        self.c.push(1.0);
    }

    /// The regularization contribution `α Σ(1−C) + β Σ 2C(1−C)` —
    /// reported in diagnostics.
    pub fn regularizer(&self) -> f32 {
        self.c
            .iter()
            .map(|&c| self.alpha * (1.0 - c) + self.beta * 2.0 * c * (1.0 - c))
            .sum()
    }

    /// Fraction of triples currently marked down (C < 0.5).
    pub fn fraction_marked_down(&self) -> f32 {
        if self.c.is_empty() {
            return 0.0;
        }
        self.c.iter().filter(|&&c| c < 0.5).count() as f32 / self.c.len() as f32
    }

    /// Mean confidence (0 for an empty store).
    pub fn mean(&self) -> f32 {
        if self.c.is_empty() {
            return 0.0;
        }
        self.c.iter().sum::<f32>() / self.c.len() as f32
    }

    /// Fraction of C in `[0, 0.1] ∪ [0.9, 1]` — how polarized the
    /// scores are. The β term of Eq. (6) exists to drive this toward 1;
    /// tracking it per epoch is the direct diagnostic that the relaxed
    /// objective is behaving like the binary one it approximates.
    pub fn polarized_fraction(&self) -> f32 {
        if self.c.is_empty() {
            return 0.0;
        }
        let polar = self.c.iter().filter(|&&c| c <= 0.1 || c >= 0.9).count();
        polar as f32 / self.c.len() as f32
    }

    /// Uniform-bin histogram of the scores over `[0, 1]` (Fig. 5).
    pub fn histogram(&self, bins: usize) -> Vec<u64> {
        let bins = bins.max(1);
        let mut counts = vec![0u64; bins];
        for &c in &self.c {
            let b = ((c * bins as f32) as usize).min(bins - 1);
            counts[b] += 1;
        }
        counts
    }

    /// Snapshot for the run log's per-epoch `confidence` block.
    pub fn telemetry(&self, bins: usize) -> pge_obs::ConfidenceTelemetry {
        pge_obs::ConfidenceTelemetry {
            mean: self.mean(),
            polarized_frac: self.polarized_fraction(),
            marked_down_frac: self.fraction_marked_down(),
            hist: self.histogram(bins),
        }
    }
}

// --- Selectable confidence backends ---------------------------------

/// Which confidence-update rule a training run uses (`--confidence`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ConfidenceBackend {
    /// The paper's Eq. (6) SGD step — bit-identical to the historical
    /// hard-coded path.
    #[default]
    Pge,
    /// Contrastive confidence adaption: InfoNCE win probability ×
    /// neighborhood cosine agreement against cached per-attribute
    /// value-embedding centroids.
    Cca,
}

impl ConfidenceBackend {
    /// Stable name — hashed into the checkpoint config hash, so a
    /// checkpoint records which rule produced its confidence table.
    pub fn name(&self) -> &'static str {
        match self {
            ConfidenceBackend::Pge => "pge",
            ConfidenceBackend::Cca => "cca",
        }
    }

    /// Parse a `--confidence` flag value.
    pub fn parse(s: &str) -> Result<ConfidenceBackend, String> {
        match s {
            "pge" => Ok(ConfidenceBackend::Pge),
            "cca" => Ok(ConfidenceBackend::Cca),
            other => Err(format!(
                "unknown confidence backend {other:?} (expected pge or cca)"
            )),
        }
    }

    /// Build the updater for this backend. `num_attrs`/`dim` size the
    /// CCA neighbor cache; the Eq. (6) backend ignores them.
    pub fn make_updater(&self, num_attrs: usize, dim: usize) -> Box<dyn ConfidenceUpdater> {
        match self {
            ConfidenceBackend::Pge => Box::new(PgeUpdater),
            ConfidenceBackend::Cca => Box::new(CcaUpdater::new(num_attrs, dim)),
        }
    }
}

/// The per-triple training signal a batch hands to the updater.
/// Captured inside the gradient lanes and applied in fixed lane order,
/// so every backend inherits the trainer's thread-count invariance.
#[derive(Clone, Debug)]
pub struct ConfidenceSignal {
    /// Dataset index of the training triple.
    pub index: usize,
    /// The triple's Eq. (3) loss term this batch.
    pub triple_loss: f32,
    /// InfoNCE win probability of the positive against its sampled
    /// negatives — only populated when the backend asks for contrast
    /// (see [`ConfidenceUpdater::wants_contrast`]); 0.0 otherwise.
    pub contrast: f32,
    /// Attribute id (indexes the CCA neighbor cache).
    pub attr: u16,
    /// The positive value embedding — empty unless the backend asks
    /// for contrast, so the Eq. (6) path never pays the copy.
    pub value_emb: Vec<f32>,
}

/// A confidence-update rule. Implementations must be deterministic
/// functions of the signal sequence — signals arrive in fixed lane
/// order regardless of thread count.
pub trait ConfidenceUpdater: Send {
    fn backend(&self) -> ConfidenceBackend;

    /// True when batches must capture the contrastive extras (InfoNCE
    /// probability + value embedding) into each signal. The Eq. (6)
    /// path returns false so its hot loop stays byte-for-byte the
    /// historical one.
    fn wants_contrast(&self) -> bool;

    /// Consume one triple's signal, updating `store` (and any cached
    /// backend state).
    fn apply(&mut self, store: &mut ConfidenceStore, sig: ConfidenceSignal);

    /// Auxiliary backend state to embed in checkpoints (the CCA
    /// neighbor cache; empty for Eq. (6)).
    fn aux_state(&self) -> Vec<f32>;

    /// Restore auxiliary state captured by [`Self::aux_state`].
    fn restore_aux(&mut self, aux: &[f32]) -> Result<(), String>;
}

/// Eq. (6) — delegates to [`ConfidenceStore::update`] with the exact
/// historical float operations.
struct PgeUpdater;

impl ConfidenceUpdater for PgeUpdater {
    fn backend(&self) -> ConfidenceBackend {
        ConfidenceBackend::Pge
    }

    fn wants_contrast(&self) -> bool {
        false
    }

    fn apply(&mut self, store: &mut ConfidenceStore, sig: ConfidenceSignal) {
        store.update(sig.index, sig.triple_loss);
    }

    fn aux_state(&self) -> Vec<f32> {
        Vec::new()
    }

    fn restore_aux(&mut self, aux: &[f32]) -> Result<(), String> {
        if aux.is_empty() {
            Ok(())
        } else {
            Err(format!(
                "pge confidence backend carries no auxiliary state but the \
                 checkpoint has {} entries — it was written by another backend",
                aux.len()
            ))
        }
    }
}

/// Contrastive confidence adaption: per-attribute EMA centroids of
/// value embeddings form the "neighbor cache"; confidence relaxes
/// toward √(InfoNCE · cosine-agreement), and each triple's embedding
/// is folded into its attribute's centroid weighted by the updated
/// confidence (so low-confidence triples pollute the cache less).
struct CcaUpdater {
    /// `num_attrs × dim`, row-major EMA centroids.
    centroids: Vec<f32>,
    /// Observations folded into each centroid (cold centroids fall
    /// back to pure contrastive evidence).
    counts: Vec<f32>,
    dim: usize,
    /// EMA rate of the centroid update.
    eta: f32,
}

impl CcaUpdater {
    fn new(num_attrs: usize, dim: usize) -> CcaUpdater {
        CcaUpdater {
            centroids: vec![0.0; num_attrs.max(1) * dim],
            counts: vec![0.0; num_attrs.max(1)],
            dim,
            eta: 0.1,
        }
    }
}

fn cosine(a: &[f32], b: &[f32]) -> f32 {
    let (mut dot, mut na, mut nb) = (0.0f32, 0.0f32, 0.0f32);
    for (&x, &y) in a.iter().zip(b) {
        dot += x * y;
        na += x * x;
        nb += y * y;
    }
    let denom = (na.sqrt() * nb.sqrt()).max(1e-12);
    dot / denom
}

impl ConfidenceUpdater for CcaUpdater {
    fn backend(&self) -> ConfidenceBackend {
        ConfidenceBackend::Cca
    }

    fn wants_contrast(&self) -> bool {
        true
    }

    fn apply(&mut self, store: &mut ConfidenceStore, sig: ConfidenceSignal) {
        let a = (sig.attr as usize).min(self.counts.len() - 1);
        let row = &mut self.centroids[a * self.dim..(a + 1) * self.dim];
        debug_assert_eq!(sig.value_emb.len(), self.dim);
        // Neighborhood agreement in [0,1]; a cold centroid carries no
        // evidence, so fall back to the contrastive term alone.
        let agree = if self.counts[a] > 0.0 {
            0.5 * (cosine(row, &sig.value_emb) + 1.0)
        } else {
            sig.contrast
        };
        // Geometric blend: both the contrastive win and the neighbor
        // consensus must hold for confidence to stay high.
        let target = (sig.contrast.max(0.0) * agree.max(0.0)).sqrt();
        let c = store.get(sig.index);
        store.set(sig.index, c + store.lr * (target - c));
        let w = self.eta * store.get(sig.index);
        for (cd, &x) in row.iter_mut().zip(&sig.value_emb) {
            *cd += w * (x - *cd);
        }
        self.counts[a] += 1.0;
    }

    fn aux_state(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.counts.len() + self.centroids.len());
        out.extend_from_slice(&self.counts);
        out.extend_from_slice(&self.centroids);
        out
    }

    fn restore_aux(&mut self, aux: &[f32]) -> Result<(), String> {
        let want = self.counts.len() + self.centroids.len();
        if aux.len() != want {
            return Err(format!(
                "cca neighbor cache has {} entries in the checkpoint but this \
                 run needs {want} ({} attrs × dim {})",
                aux.len(),
                self.counts.len(),
                self.dim
            ));
        }
        let (counts, centroids) = aux.split_at(self.counts.len());
        self.counts.copy_from_slice(counts);
        self.centroids.copy_from_slice(centroids);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn init_all_ones() {
        let s = ConfidenceStore::new(5, 0.5, 0.1, 0.01);
        assert_eq!(s.len(), 5);
        assert!(s.scores().iter().all(|&c| c == 1.0));
        assert_eq!(s.fraction_marked_down(), 0.0);
    }

    #[test]
    fn high_loss_pushes_confidence_down() {
        let mut s = ConfidenceStore::new(1, 0.5, 0.05, 0.05);
        for _ in 0..200 {
            s.update(0, 5.0); // persistently implausible triple
        }
        assert!(s.get(0) < 0.2, "C = {}", s.get(0));
    }

    #[test]
    fn low_loss_keeps_confidence_up() {
        let mut s = ConfidenceStore::new(1, 0.5, 0.05, 0.05);
        for _ in 0..200 {
            s.update(0, 0.05); // well-explained triple
        }
        assert!(s.get(0) > 0.8, "C = {}", s.get(0));
    }

    #[test]
    fn alpha_controls_markdown_threshold() {
        // A loss between α_small and α_large marks down only under
        // the small α.
        let mut strict = ConfidenceStore::new(1, 0.3, 0.0, 0.05);
        let mut lenient = ConfidenceStore::new(1, 2.0, 0.0, 0.05);
        for _ in 0..300 {
            strict.update(0, 1.0);
            lenient.update(0, 1.0);
        }
        assert!(strict.get(0) < 0.1);
        assert!(lenient.get(0) > 0.9);
    }

    #[test]
    fn beta_polarizes_from_above_half() {
        // With loss exactly α, only β acts; from C=1 it holds C at the
        // pole (gradient β(2−4C) = −2β < 0 pushes C up).
        let mut s = ConfidenceStore::new(1, 0.5, 0.2, 0.05);
        for _ in 0..100 {
            s.update(0, 0.5);
        }
        assert!(s.get(0) > 0.95);
    }

    #[test]
    fn clamped_to_unit_interval() {
        let mut s = ConfidenceStore::new(2, 0.5, 0.1, 10.0); // huge lr
        s.update(0, 100.0);
        s.update(1, -100.0);
        assert_eq!(s.get(0), 0.0);
        assert_eq!(s.get(1), 1.0);
    }

    #[test]
    fn regularizer_zero_at_poles() {
        let mut s = ConfidenceStore::new(2, 0.5, 0.1, 0.05);
        // C = 1 and C = 0: α(1−1)+0 and α·1+0.
        s.update(0, 1000.0); // slam to 0 over updates
        for _ in 0..100 {
            s.update(0, 1000.0);
        }
        let r = s.regularizer();
        assert!((r - s.alpha).abs() < 1e-4, "r={r}");
    }

    #[test]
    fn fraction_marked_down_counts() {
        let mut s = ConfidenceStore::new(4, 0.5, 0.1, 0.5);
        for _ in 0..50 {
            s.update(0, 10.0);
            s.update(1, 10.0);
        }
        assert!((s.fraction_marked_down() - 0.5).abs() < 1e-6);
    }

    #[test]
    fn polarization_diagnostics() {
        let mut s = ConfidenceStore::new(4, 0.5, 0.1, 0.5);
        // Initial state: everything at the C=1 pole.
        assert_eq!(s.polarized_fraction(), 1.0);
        assert_eq!(s.mean(), 1.0);
        // Slam two to 0, leave two at 1 → still fully polarized,
        // mean halves.
        for _ in 0..50 {
            s.update(0, 100.0);
            s.update(1, 100.0);
        }
        assert_eq!(s.polarized_fraction(), 1.0);
        assert!((s.mean() - 0.5).abs() < 1e-6);
        let hist = s.histogram(10);
        assert_eq!(hist[0], 2);
        assert_eq!(hist[9], 2);
        assert_eq!(hist.iter().sum::<u64>(), 4);
        let t = s.telemetry(10);
        assert_eq!(t.polarized_frac, 1.0);
        assert_eq!(t.marked_down_frac, 0.5);
        assert_eq!(t.hist, hist);
    }

    #[test]
    fn midscale_confidence_is_not_polarized() {
        let mut s = ConfidenceStore::new(1, 0.5, 0.0, 0.1);
        // A few high-loss steps from C=1 leave C mid-scale.
        for _ in 0..3 {
            s.update(0, 2.0);
        }
        let c = s.get(0);
        assert!(c > 0.1 && c < 0.9, "C = {c}");
        assert_eq!(s.polarized_fraction(), 0.0);
    }

    #[test]
    fn restore_scores_round_trips_and_rejects_length_mismatch() {
        let mut s = ConfidenceStore::new(3, 0.5, 0.1, 0.05);
        s.update(0, 10.0);
        let saved = s.scores().to_vec();
        let mut fresh = ConfidenceStore::new(3, 0.5, 0.1, 0.05);
        fresh.restore_scores(&saved).unwrap();
        assert_eq!(fresh.scores(), &saved[..]);
        assert!(fresh.restore_scores(&[1.0, 1.0]).is_err());
    }

    #[test]
    fn empty_store_diagnostics_are_zero() {
        let s = ConfidenceStore::new(0, 0.5, 0.1, 0.05);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.polarized_fraction(), 0.0);
        assert_eq!(s.histogram(4), vec![0, 0, 0, 0]);
    }

    // --- backends ----------------------------------------------------

    fn sig(i: usize, loss: f32, contrast: f32, attr: u16, emb: &[f32]) -> ConfidenceSignal {
        ConfidenceSignal {
            index: i,
            triple_loss: loss,
            contrast,
            attr,
            value_emb: emb.to_vec(),
        }
    }

    #[test]
    fn backend_parse_and_names_round_trip() {
        assert_eq!(ConfidenceBackend::parse("pge").unwrap().name(), "pge");
        assert_eq!(ConfidenceBackend::parse("cca").unwrap().name(), "cca");
        assert!(ConfidenceBackend::parse("mystery").is_err());
        assert_eq!(ConfidenceBackend::default(), ConfidenceBackend::Pge);
    }

    #[test]
    fn pge_backend_is_bit_identical_to_direct_updates() {
        let mut direct = ConfidenceStore::new(3, 1.2, 0.05, 0.03);
        let mut via = ConfidenceStore::new(3, 1.2, 0.05, 0.03);
        let mut up = ConfidenceBackend::Pge.make_updater(4, 8);
        assert!(!up.wants_contrast());
        for (i, loss) in [(0usize, 3.0f32), (1, 0.2), (2, 1.4), (0, 2.8), (1, 0.1)] {
            direct.update(i, loss);
            up.apply(&mut via, sig(i, loss, 0.0, 0, &[]));
        }
        let a: Vec<u32> = direct.scores().iter().map(|c| c.to_bits()).collect();
        let b: Vec<u32> = via.scores().iter().map(|c| c.to_bits()).collect();
        assert_eq!(a, b, "Eq. 6 backend must be bit-identical");
        assert!(up.aux_state().is_empty());
        assert!(up.restore_aux(&[]).is_ok());
        assert!(up.restore_aux(&[1.0]).is_err());
    }

    #[test]
    fn cca_backend_rewards_consensus_and_penalizes_outliers() {
        let mut s = ConfidenceStore::new(20, 1.2, 0.05, 0.3);
        let mut up = ConfidenceBackend::Cca.make_updater(2, 4);
        assert!(up.wants_contrast());
        let consensus = [1.0f32, 0.5, 0.0, 0.0];
        let outlier = [-1.0f32, 0.0, 0.9, 0.0];
        // Many agreeing triples with a strong contrastive win, one
        // repeated outlier with a weak win.
        for round in 0..8 {
            for i in 0..19 {
                up.apply(&mut s, sig(i, 0.1, 0.95, 1, &consensus));
            }
            up.apply(&mut s, sig(19, 3.0, 0.1, 1, &outlier));
            let _ = round;
        }
        assert!(
            s.get(0) > 0.8,
            "consensus triple should stay confident: {}",
            s.get(0)
        );
        assert!(
            s.get(19) < 0.5,
            "outlier should be marked down: {}",
            s.get(19)
        );
    }

    #[test]
    fn cca_aux_round_trips_and_rejects_wrong_shape() {
        let mut s = ConfidenceStore::new(4, 1.2, 0.05, 0.3);
        let mut up = ConfidenceBackend::Cca.make_updater(3, 4);
        for i in 0..4 {
            up.apply(
                &mut s,
                sig(i, 0.5, 0.7, (i % 3) as u16, &[0.3, -0.1, 0.8, 0.2]),
            );
        }
        let aux = up.aux_state();
        assert_eq!(aux.len(), 3 + 3 * 4);
        // A fresh updater restored from aux continues identically.
        let mut s2 = ConfidenceStore::new(4, 1.2, 0.05, 0.3);
        s2.restore_scores(s.scores()).unwrap();
        let mut up2 = ConfidenceBackend::Cca.make_updater(3, 4);
        up2.restore_aux(&aux).unwrap();
        up.apply(&mut s, sig(2, 0.2, 0.9, 1, &[0.5, 0.5, 0.0, 0.1]));
        up2.apply(&mut s2, sig(2, 0.2, 0.9, 1, &[0.5, 0.5, 0.0, 0.1]));
        assert_eq!(s.get(2).to_bits(), s2.get(2).to_bits());
        assert!(up2.restore_aux(&aux[1..]).is_err());
    }

    #[test]
    fn set_and_push_default_grow_and_pin() {
        let mut s = ConfidenceStore::new(1, 1.2, 0.05, 0.03);
        s.push_default();
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(1), 1.0);
        s.set(0, -3.0);
        assert_eq!(s.get(0), 0.0, "set clamps into [0,1]");
        s.set(1, 0.25);
        assert_eq!(s.get(1), 0.25);
    }
}
