//! The noise-aware mechanism (§3.3): per-triple learnable confidence.
//!
//! Each training triple `(t,a,v)` carries a confidence `C ∈ [0,1]`.
//! The relaxed objective of Eq. (6) is
//!
//! ```text
//! L = Σ C·L_triple + α Σ (1 − C) + β Σ (1 − C² − (1−C)²)
//! ```
//!
//! Noting `1 − C² − (1−C)² = 2C(1−C)`, the β term penalizes
//! indecision (maximal at C = ½), polarizing C toward {0,1}, while α
//! prices marking a triple down. The gradient w.r.t. one C is
//! `∂L/∂C = L_triple − α + β(2 − 4C)`.

/// Confidence scores for a training set, updated by SGD alongside the
/// embedding parameters.
#[derive(Clone, Debug)]
pub struct ConfidenceStore {
    c: Vec<f32>,
    /// Sparsity price α of Eq. (4): larger α makes down-weighting
    /// costlier, so fewer triples are marked down.
    pub alpha: f32,
    /// Polarization strength β of Eq. (6).
    pub beta: f32,
    /// SGD step size for confidence updates.
    pub lr: f32,
}

impl ConfidenceStore {
    /// All-confident initialization (C = 1 for every triple).
    pub fn new(n: usize, alpha: f32, beta: f32, lr: f32) -> Self {
        ConfidenceStore {
            c: vec![1.0; n],
            alpha,
            beta,
            lr,
        }
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.c.len()
    }

    pub fn is_empty(&self) -> bool {
        self.c.is_empty()
    }

    /// Confidence of training triple `i`.
    #[inline]
    pub fn get(&self, i: usize) -> f32 {
        self.c[i]
    }

    /// All confidences (Fig. 5 histograms).
    pub fn scores(&self) -> &[f32] {
        &self.c
    }

    /// Overwrite every confidence score from a checkpoint. Fails when
    /// the checkpoint was taken against a different training set size
    /// — the scores are positional, so a length mismatch means the
    /// corpus changed underneath the checkpoint.
    pub fn restore_scores(&mut self, scores: &[f32]) -> Result<(), String> {
        if scores.len() != self.c.len() {
            return Err(format!(
                "confidence table has {} entries but the training set has {} triples",
                scores.len(),
                self.c.len()
            ));
        }
        self.c.copy_from_slice(scores);
        Ok(())
    }

    /// One SGD step on `C_i` given that triple's current loss
    /// `L_triple`; clamps back into `[0,1]` (the relaxation of
    /// Eq. (5) keeps C in the unit interval).
    #[inline]
    pub fn update(&mut self, i: usize, triple_loss: f32) {
        let c = self.c[i];
        let grad = triple_loss - self.alpha + self.beta * (2.0 - 4.0 * c);
        self.c[i] = (c - self.lr * grad).clamp(0.0, 1.0);
    }

    /// The regularization contribution `α Σ(1−C) + β Σ 2C(1−C)` —
    /// reported in diagnostics.
    pub fn regularizer(&self) -> f32 {
        self.c
            .iter()
            .map(|&c| self.alpha * (1.0 - c) + self.beta * 2.0 * c * (1.0 - c))
            .sum()
    }

    /// Fraction of triples currently marked down (C < 0.5).
    pub fn fraction_marked_down(&self) -> f32 {
        if self.c.is_empty() {
            return 0.0;
        }
        self.c.iter().filter(|&&c| c < 0.5).count() as f32 / self.c.len() as f32
    }

    /// Mean confidence (0 for an empty store).
    pub fn mean(&self) -> f32 {
        if self.c.is_empty() {
            return 0.0;
        }
        self.c.iter().sum::<f32>() / self.c.len() as f32
    }

    /// Fraction of C in `[0, 0.1] ∪ [0.9, 1]` — how polarized the
    /// scores are. The β term of Eq. (6) exists to drive this toward 1;
    /// tracking it per epoch is the direct diagnostic that the relaxed
    /// objective is behaving like the binary one it approximates.
    pub fn polarized_fraction(&self) -> f32 {
        if self.c.is_empty() {
            return 0.0;
        }
        let polar = self.c.iter().filter(|&&c| c <= 0.1 || c >= 0.9).count();
        polar as f32 / self.c.len() as f32
    }

    /// Uniform-bin histogram of the scores over `[0, 1]` (Fig. 5).
    pub fn histogram(&self, bins: usize) -> Vec<u64> {
        let bins = bins.max(1);
        let mut counts = vec![0u64; bins];
        for &c in &self.c {
            let b = ((c * bins as f32) as usize).min(bins - 1);
            counts[b] += 1;
        }
        counts
    }

    /// Snapshot for the run log's per-epoch `confidence` block.
    pub fn telemetry(&self, bins: usize) -> pge_obs::ConfidenceTelemetry {
        pge_obs::ConfidenceTelemetry {
            mean: self.mean(),
            polarized_frac: self.polarized_fraction(),
            marked_down_frac: self.fraction_marked_down(),
            hist: self.histogram(bins),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn init_all_ones() {
        let s = ConfidenceStore::new(5, 0.5, 0.1, 0.01);
        assert_eq!(s.len(), 5);
        assert!(s.scores().iter().all(|&c| c == 1.0));
        assert_eq!(s.fraction_marked_down(), 0.0);
    }

    #[test]
    fn high_loss_pushes_confidence_down() {
        let mut s = ConfidenceStore::new(1, 0.5, 0.05, 0.05);
        for _ in 0..200 {
            s.update(0, 5.0); // persistently implausible triple
        }
        assert!(s.get(0) < 0.2, "C = {}", s.get(0));
    }

    #[test]
    fn low_loss_keeps_confidence_up() {
        let mut s = ConfidenceStore::new(1, 0.5, 0.05, 0.05);
        for _ in 0..200 {
            s.update(0, 0.05); // well-explained triple
        }
        assert!(s.get(0) > 0.8, "C = {}", s.get(0));
    }

    #[test]
    fn alpha_controls_markdown_threshold() {
        // A loss between α_small and α_large marks down only under
        // the small α.
        let mut strict = ConfidenceStore::new(1, 0.3, 0.0, 0.05);
        let mut lenient = ConfidenceStore::new(1, 2.0, 0.0, 0.05);
        for _ in 0..300 {
            strict.update(0, 1.0);
            lenient.update(0, 1.0);
        }
        assert!(strict.get(0) < 0.1);
        assert!(lenient.get(0) > 0.9);
    }

    #[test]
    fn beta_polarizes_from_above_half() {
        // With loss exactly α, only β acts; from C=1 it holds C at the
        // pole (gradient β(2−4C) = −2β < 0 pushes C up).
        let mut s = ConfidenceStore::new(1, 0.5, 0.2, 0.05);
        for _ in 0..100 {
            s.update(0, 0.5);
        }
        assert!(s.get(0) > 0.95);
    }

    #[test]
    fn clamped_to_unit_interval() {
        let mut s = ConfidenceStore::new(2, 0.5, 0.1, 10.0); // huge lr
        s.update(0, 100.0);
        s.update(1, -100.0);
        assert_eq!(s.get(0), 0.0);
        assert_eq!(s.get(1), 1.0);
    }

    #[test]
    fn regularizer_zero_at_poles() {
        let mut s = ConfidenceStore::new(2, 0.5, 0.1, 0.05);
        // C = 1 and C = 0: α(1−1)+0 and α·1+0.
        s.update(0, 1000.0); // slam to 0 over updates
        for _ in 0..100 {
            s.update(0, 1000.0);
        }
        let r = s.regularizer();
        assert!((r - s.alpha).abs() < 1e-4, "r={r}");
    }

    #[test]
    fn fraction_marked_down_counts() {
        let mut s = ConfidenceStore::new(4, 0.5, 0.1, 0.5);
        for _ in 0..50 {
            s.update(0, 10.0);
            s.update(1, 10.0);
        }
        assert!((s.fraction_marked_down() - 0.5).abs() < 1e-6);
    }

    #[test]
    fn polarization_diagnostics() {
        let mut s = ConfidenceStore::new(4, 0.5, 0.1, 0.5);
        // Initial state: everything at the C=1 pole.
        assert_eq!(s.polarized_fraction(), 1.0);
        assert_eq!(s.mean(), 1.0);
        // Slam two to 0, leave two at 1 → still fully polarized,
        // mean halves.
        for _ in 0..50 {
            s.update(0, 100.0);
            s.update(1, 100.0);
        }
        assert_eq!(s.polarized_fraction(), 1.0);
        assert!((s.mean() - 0.5).abs() < 1e-6);
        let hist = s.histogram(10);
        assert_eq!(hist[0], 2);
        assert_eq!(hist[9], 2);
        assert_eq!(hist.iter().sum::<u64>(), 4);
        let t = s.telemetry(10);
        assert_eq!(t.polarized_frac, 1.0);
        assert_eq!(t.marked_down_frac, 0.5);
        assert_eq!(t.hist, hist);
    }

    #[test]
    fn midscale_confidence_is_not_polarized() {
        let mut s = ConfidenceStore::new(1, 0.5, 0.0, 0.1);
        // A few high-loss steps from C=1 leave C mid-scale.
        for _ in 0..3 {
            s.update(0, 2.0);
        }
        let c = s.get(0);
        assert!(c > 0.1 && c < 0.9, "C = {c}");
        assert_eq!(s.polarized_fraction(), 0.0);
    }

    #[test]
    fn restore_scores_round_trips_and_rejects_length_mismatch() {
        let mut s = ConfidenceStore::new(3, 0.5, 0.1, 0.05);
        s.update(0, 10.0);
        let saved = s.scores().to_vec();
        let mut fresh = ConfidenceStore::new(3, 0.5, 0.1, 0.05);
        fresh.restore_scores(&saved).unwrap();
        assert_eq!(fresh.scores(), &saved[..]);
        assert!(fresh.restore_scores(&[1.0, 1.0]).is_err());
    }

    #[test]
    fn empty_store_diagnostics_are_zero() {
        let s = ConfidenceStore::new(0, 0.5, 0.1, 0.05);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.polarized_fraction(), 0.0);
        assert_eq!(s.histogram(4), vec![0, 0, 0, 0]);
    }
}
