//! End-to-end PGE training (§3 of the paper).
//!
//! Pipeline: build the training corpus → pre-train word2vec vectors →
//! assemble the text encoder + relation table → minibatch Adam over
//! the negative-sampling objective (Eq. 3), weighted per-triple by the
//! learnable confidence scores of the noise-aware mechanism (Eq. 6).
//!
//! # Deterministic data parallelism
//!
//! With the CNN encoder, each minibatch is split across
//! [`GRAD_LANES`] fixed *virtual lanes*: batch position `p` always
//! belongs to lane `p % GRAD_LANES`, each lane accumulates encoder and
//! relation gradients into its own buffer, and the buffers are reduced
//! in lane order before the single Adam step. Worker threads own
//! contiguous lane ranges, so the thread count decides only *who*
//! computes a lane, never which lane a triple lands in or the order of
//! the floating-point reduction — a run with `threads = 8` is
//! bit-identical to `threads = 1` at the same seed. Negative sampling
//! draws from a per-triple RNG stream (seeded from `(seed, epoch,
//! dataset index)`), which keeps the drawn corruptions independent of
//! the partition as well. The BERT-style encoder keeps the legacy
//! serial loop (its backward pass still mutates inline gradients) and
//! ignores `threads`.

use crate::checkpoint::{config_hash, data_fingerprint, CheckpointOptions, TrainerState};
use crate::confidence::{ConfidenceBackend, ConfidenceSignal, ConfidenceStore, ConfidenceUpdater};
use crate::encoder::{EncoderKind, TextEncoder};
use crate::model::PgeModel;
use crate::persist::PersistError;
use crate::score::{ScoreKind, Scorer};
use pge_graph::{Dataset, NegativeSampler, SamplingMode, Triple};
use pge_nn::{
    AdamHparams, CnnConfig, Embedding, SparseRowGrads, TextCnnEncoder, TransformerConfig,
};
use pge_obs::{checkpoint_event, epoch_event, global_tracer, span, EpochTelemetry, RunLog, Stage};
use pge_tensor::ops;
use pge_text::word2vec::{train_word2vec, Word2VecConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// Bins of the per-epoch confidence histogram in the run log.
const CONFIDENCE_HIST_BINS: usize = 10;

/// Number of fixed gradient lanes the data-parallel trainer splits a
/// minibatch across. Results are bit-identical for any worker count
/// from 1 to `GRAD_LANES` because the triple → lane assignment and the
/// lane reduction order depend only on this constant, never on the
/// thread count (which is capped here).
pub const GRAD_LANES: usize = 32;

/// Resolve a requested thread count: `0` means auto-detect from
/// [`std::thread::available_parallelism`]; everything is clamped to
/// `1..=GRAD_LANES`.
pub fn resolve_threads(requested: usize) -> usize {
    let n = if requested == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        requested
    };
    n.clamp(1, GRAD_LANES)
}

/// SplitMix64 finalizer — decorrelates nearby seed inputs.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Seed of the private RNG stream for one training triple in one
/// epoch. Keyed by the triple's *dataset index* (not its batch
/// position), so negative sampling is independent of both the shuffle
/// and the lane/thread partition.
pub(crate) fn triple_stream_seed(seed: u64, epoch: usize, index: usize) -> u64 {
    splitmix64(splitmix64(seed ^ splitmix64(epoch as u64)) ^ index as u64)
}

/// Seed of the epoch's Fisher–Yates shuffle stream. Pure in
/// `(seed, epoch)` — unlike one RNG threaded across epochs — so a
/// resumed run regenerates epoch k's permutation without replaying
/// epochs `0..k` and without serializing any RNG state. The domain
/// constant (`"SHUF"`) keeps this stream disjoint from
/// [`triple_stream_seed`]'s.
pub(crate) fn shuffle_seed(seed: u64, epoch: usize) -> u64 {
    splitmix64(splitmix64(seed ^ 0x5348_5546) ^ epoch as u64)
}

/// All the knobs of a PGE training run.
#[derive(Clone, Debug)]
pub struct PgeConfig {
    /// Entity-embedding dimension (even; complex scorers halve it).
    pub dim: usize,
    /// Word-embedding dimension for the CNN encoder.
    pub word_dim: usize,
    /// CNN filter widths (paper sweeps {1,2,3,4} across three CNNs).
    pub widths: Vec<usize>,
    /// Feature maps per filter width.
    pub filters_per_width: usize,
    /// Max tokens per text.
    pub max_len: usize,
    /// Text encoder: CNN (paper's choice) or BERT-style.
    pub encoder: EncoderKind,
    /// Scoring function (paper evaluates TransE and RotatE).
    pub score: ScoreKind,
    /// Margin γ for the distance scorers.
    pub gamma: f32,
    /// Training epochs.
    pub epochs: usize,
    /// Minibatch size (one Adam step per batch).
    pub batch: usize,
    /// Negative samples per positive (|N(t,a,v)| in Eq. 3).
    pub negatives: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Negative-sampling mode.
    pub sampling: SamplingMode,
    /// Enable the noise-aware mechanism (§3.3).
    pub noise_aware: bool,
    /// Sparsity price α of Eq. (4).
    pub alpha: f32,
    /// Polarization strength β of Eq. (6).
    pub beta: f32,
    /// SGD step for confidence updates.
    pub confidence_lr: f32,
    /// Epochs before confidence updates begin (the embeddings must
    /// carry signal before triple losses mean anything).
    pub confidence_warmup: usize,
    /// Which confidence-update rule to use (`--confidence {pge,cca}`).
    /// `Pge` is the paper's Eq. (6) SGD step, bit-identical to the
    /// historical hard-coded path; `Cca` adapts confidence via
    /// contrastive similarity against cached neighbor embeddings.
    pub confidence: ConfidenceBackend,
    /// word2vec pre-training epochs (0 disables pre-training).
    pub word2vec_epochs: usize,
    /// Initialize RotatE relation phases uniform in ±π (the RotatE
    /// paper's own scheme) instead of Xavier. Diverse initial
    /// rotations help on relation-rich KGs (many relations must
    /// differentiate), while near-identity rotations win on catalogs
    /// with a handful of attributes — tune per dataset like the
    /// paper's grid search does.
    pub rotate_phase_init: bool,
    /// Worker threads for data-parallel training: `0` = auto-detect
    /// (`available_parallelism`), otherwise clamped to
    /// `1..=GRAD_LANES`. Any value yields bit-identical results at a
    /// given seed (see the module docs); only wall-clock time changes.
    pub threads: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PgeConfig {
    fn default() -> Self {
        PgeConfig {
            dim: 32,
            word_dim: 32,
            widths: vec![1, 2, 3],
            filters_per_width: 16,
            max_len: 20,
            encoder: EncoderKind::Cnn,
            score: ScoreKind::RotatE,
            gamma: 6.0,
            epochs: 12,
            batch: 128,
            negatives: 4,
            lr: 3e-3,
            sampling: SamplingMode::GlobalUniform,
            noise_aware: true,
            alpha: 1.2,
            beta: 0.05,
            confidence_lr: 0.03,
            confidence_warmup: 3,
            confidence: ConfidenceBackend::Pge,
            word2vec_epochs: 2,
            rotate_phase_init: false,
            threads: 0,
            seed: 13,
        }
    }
}

impl PgeConfig {
    /// Small/fast config for tests.
    pub fn tiny() -> Self {
        PgeConfig {
            dim: 16,
            word_dim: 16,
            widths: vec![1, 2],
            filters_per_width: 8,
            max_len: 14,
            epochs: 6,
            batch: 64,
            negatives: 3,
            word2vec_epochs: 1,
            ..Default::default()
        }
    }

    /// Label like `PGE(CNN)-RotatE` used in the paper's tables.
    pub fn label(&self) -> String {
        let base = format!("PGE({})-{}", self.encoder.name(), self.score.name());
        if self.noise_aware {
            base
        } else {
            format!("{base} w/o noise-aware")
        }
    }
}

/// The output of a training run.
pub struct TrainedPge {
    pub model: PgeModel,
    /// Final per-training-triple confidence scores (Fig. 5 material).
    pub confidence: ConfidenceStore,
    /// Wall-clock training time in seconds (Table 5 material).
    pub train_secs: f64,
    /// Mean triple loss per epoch (diagnostics; must trend down).
    pub epoch_losses: Vec<f32>,
    /// Full per-epoch telemetry (superset of `epoch_losses`): loss,
    /// throughput, negative-sampling stats, and — on noise-aware runs
    /// — the confidence distribution with its polarization fraction.
    pub telemetry: Vec<EpochTelemetry>,
}

/// Accumulation state of one gradient lane: detached encoder and
/// relation gradients plus the scalar per-lane bookkeeping. Allocated
/// once and reused across every batch of the run.
pub(crate) struct Lane {
    pub(crate) grads: pge_nn::CnnGrads,
    pub(crate) rel: SparseRowGrads,
    /// Deferred confidence signals; safe to apply after the batch
    /// because each index occurs at most once per epoch, so updates to
    /// distinct indices commute (the CCA neighbor cache is applied in
    /// fixed lane order, which is also thread-count invariant).
    pub(crate) conf: Vec<ConfidenceSignal>,
    pub(crate) loss_sum: f64,
    pub(crate) loss_n: usize,
    pub(crate) negs: usize,
}

impl Lane {
    /// A full set of `GRAD_LANES` fresh lanes for `enc`.
    pub(crate) fn buffers(enc: &TextCnnEncoder, rel_dim: usize) -> Vec<Lane> {
        (0..GRAD_LANES)
            .map(|_| Lane {
                grads: enc.grad_buffer(),
                rel: SparseRowGrads::new(rel_dim),
                conf: Vec::new(),
                loss_sum: 0.0,
                loss_n: 0,
                negs: 0,
            })
            .collect()
    }
}

/// Shared read-only context of one batch — everything a worker needs,
/// behind `Sync` references.
pub(crate) struct BatchCtx<'a> {
    pub(crate) enc: &'a TextCnnEncoder,
    pub(crate) relations: &'a Embedding,
    pub(crate) scorer: Scorer,
    pub(crate) title_tokens: &'a [Vec<u32>],
    pub(crate) value_tokens: &'a [Vec<u32>],
    pub(crate) train: &'a [Triple],
    pub(crate) sampler: &'a NegativeSampler,
    pub(crate) confidence: &'a ConfidenceStore,
    pub(crate) confidence_active: bool,
    /// Capture the contrastive extras (InfoNCE win probability + the
    /// value embedding) into each confidence signal — only the CCA
    /// backend pays for this.
    pub(crate) capture_contrast: bool,
    pub(crate) k: usize,
    pub(crate) epoch: usize,
    pub(crate) seed: u64,
}

/// Process this worker's lanes for one batch: lane `first_lane + j`
/// (for `lanes[j]`) owns batch positions `≡ lane (mod GRAD_LANES)`.
/// Pure accumulation — nothing here mutates shared state, so workers
/// run concurrently against the same `BatchCtx`.
pub(crate) fn run_lanes(ctx: &BatchCtx, batch: &[usize], lanes: &mut [Lane], first_lane: usize) {
    let ent_dim = ctx.enc.out_dim();
    let mut dh = vec![0.0f32; ent_dim];
    let mut dr = vec![0.0f32; ctx.scorer.rel_dim(ent_dim)];
    let mut dv = vec![0.0f32; ent_dim];
    let mut f_negs: Vec<f32> = Vec::new();
    for (j, lane) in lanes.iter_mut().enumerate() {
        for p in (first_lane + j..batch.len()).step_by(GRAD_LANES) {
            let i = batch[p];
            let triple = ctx.train[i];
            // Private RNG stream per (triple, epoch): negative draws
            // do not depend on which lane or thread runs this triple.
            let mut trng = StdRng::seed_from_u64(triple_stream_seed(ctx.seed, ctx.epoch, i));
            let negs = ctx.sampler.sample(&mut trng, &triple, ctx.k);
            if negs.is_empty() {
                continue;
            }
            let title_tokens = &ctx.title_tokens[triple.product.0 as usize];
            let value_tokens = &ctx.value_tokens[triple.value.0 as usize];
            let (e_t, cache_t) = ctx.enc.forward(title_tokens);
            let (e_v, cache_v) = ctx.enc.forward(value_tokens);
            let r = ctx.relations.row(triple.attr.0 as u32);
            let f_pos = ctx.scorer.score(&e_t, r, &e_v);
            lane.negs += negs.len();
            // Loss bookkeeping (Eq. 3 per-triple term).
            let mut l_i = -ops::log_sigmoid(f_pos);
            let w = if ctx.confidence_active {
                ctx.confidence.get(i)
            } else {
                1.0
            };
            dh.iter_mut().for_each(|x| *x = 0.0);
            dr.iter_mut().for_each(|x| *x = 0.0);
            if w > 0.0 {
                // Positive term: dL/df⁺ = −σ(−f⁺).
                dv.iter_mut().for_each(|x| *x = 0.0);
                let df_pos = -w * ops::sigmoid(-f_pos);
                ctx.scorer
                    .backward(&e_t, r, &e_v, df_pos, &mut dh, &mut dr, &mut dv);
                ctx.enc.backward_into(&cache_v, &dv, &mut lane.grads);
            }
            let inv_k = 1.0 / negs.len() as f32;
            f_negs.clear();
            for &neg in &negs {
                let neg_tokens = &ctx.value_tokens[neg.0 as usize];
                let (e_n, cache_n) = ctx.enc.forward(neg_tokens);
                let f_neg = ctx.scorer.score(&e_t, r, &e_n);
                l_i += -inv_k * ops::log_sigmoid(-f_neg);
                if ctx.capture_contrast {
                    f_negs.push(f_neg);
                }
                if w > 0.0 {
                    // Negative term: dL/df⁻ = σ(f⁻)/k.
                    dv.iter_mut().for_each(|x| *x = 0.0);
                    let df_neg = w * inv_k * ops::sigmoid(f_neg);
                    ctx.scorer
                        .backward(&e_t, r, &e_n, df_neg, &mut dh, &mut dr, &mut dv);
                    ctx.enc.backward_into(&cache_n, &dv, &mut lane.grads);
                }
            }
            if w > 0.0 {
                ctx.enc.backward_into(&cache_t, &dh, &mut lane.grads);
                lane.rel.add_row(triple.attr.0 as usize, &dr);
            }
            if ctx.confidence_active {
                let (contrast, value_emb) = if ctx.capture_contrast {
                    (info_nce(f_pos, &f_negs), e_v.clone())
                } else {
                    (0.0, Vec::new())
                };
                lane.conf.push(ConfidenceSignal {
                    index: i,
                    triple_loss: l_i,
                    contrast,
                    attr: triple.attr.0,
                    value_emb,
                });
            }
            lane.loss_sum += l_i as f64;
            lane.loss_n += 1;
        }
    }
}

/// InfoNCE win probability of the positive score against its sampled
/// negatives: `exp(f⁺) / (exp(f⁺) + Σ exp(f⁻))`, computed with the
/// usual max-shift for stability. The contrastive evidence the CCA
/// confidence backend consumes.
pub(crate) fn info_nce(f_pos: f32, f_negs: &[f32]) -> f32 {
    let m = f_negs.iter().copied().fold(f_pos, f32::max);
    let pos = (f_pos - m).exp();
    let denom: f32 = pos + f_negs.iter().map(|&f| (f - m).exp()).sum::<f32>();
    pos / denom.max(1e-12)
}

/// Train PGE on a dataset's training split.
pub fn train_pge(dataset: &Dataset, cfg: &PgeConfig) -> TrainedPge {
    train_pge_with_log(dataset, cfg, None)
}

/// [`train_pge`], streaming each epoch's telemetry into `log` as it
/// completes (so a killed run keeps every finished epoch).
pub fn train_pge_with_log(dataset: &Dataset, cfg: &PgeConfig, log: Option<&RunLog>) -> TrainedPge {
    train_pge_resumable(dataset, cfg, log, None)
        .expect("training without checkpointing cannot hit a persistence error")
}

/// [`train_pge_with_log`] with crash-safe epoch-boundary checkpoints.
///
/// With `ckpt = Some(opts)`, the full trainer state — model
/// parameters, Adam moments, the global step, the confidence table,
/// and the loss history — is written atomically to
/// `opts.dir/trainer.ckpt` after every epoch, and `opts.resume`
/// continues from the directory's checkpoint instead of initializing
/// from scratch. Because every random stream is a pure function of
/// `(seed, epoch, index)` (negative sampling) or `(seed, epoch)` (the
/// shuffle), a resumed run is **bit-identical** to an uninterrupted
/// one at any `--threads`.
///
/// Errors: a missing/corrupt/tampered checkpoint, a checkpoint from a
/// different config or corpus ([`TrainerState::verify`]), a
/// checkpoint-directory I/O failure, or checkpointing a BERT-encoder
/// run (the BERT variant is not persistable).
pub fn train_pge_resumable(
    dataset: &Dataset,
    cfg: &PgeConfig,
    log: Option<&RunLog>,
    ckpt: Option<&CheckpointOptions>,
) -> Result<TrainedPge, PersistError> {
    let start = Instant::now();
    let graph = &dataset.graph;
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    if ckpt.is_some() && cfg.encoder == EncoderKind::Bert {
        return Err(PersistError::UnsupportedEncoder);
    }
    let (cfg_hash, data_fp) = if ckpt.is_some() {
        (config_hash(cfg), data_fingerprint(dataset))
    } else {
        (0, 0)
    };
    let resumed: Option<TrainerState> = match ckpt {
        Some(opts) if opts.resume => {
            let state = TrainerState::load(&opts.dir)?;
            state.verify_backend(cfg.confidence.name())?;
            state.verify(cfg_hash, data_fp)?;
            if let Some(log) = log {
                log.write(&checkpoint_event(&[(
                    "resumed_from",
                    state.epochs_done as f64,
                )]));
            }
            Some(state)
        }
        _ => None,
    };

    // 1. Corpus + word2vec initialization (§3.1) — or, on resume, the
    // checkpointed parameters and moments verbatim. The snapshot
    // embeds the vocabulary, so the corpus pass is skipped entirely.
    let scorer = Scorer::new(cfg.score, cfg.gamma);
    let mut model = match &resumed {
        Some(state) => state.restore_model(graph)?,
        None => {
            let corpus = {
                let _s = span("train.corpus");
                crate::corpus::build_corpus(graph, &dataset.train)
            };
            let encoder = match cfg.encoder {
                EncoderKind::Cnn => {
                    let vectors = if cfg.word2vec_epochs > 0 {
                        let _s = span("train.word2vec");
                        train_word2vec(
                            &corpus.vocab,
                            &corpus.sentences,
                            &Word2VecConfig {
                                dim: cfg.word_dim,
                                epochs: cfg.word2vec_epochs,
                                seed: cfg.seed ^ 0x5eed,
                                ..Default::default()
                            },
                        )
                    } else {
                        pge_tensor::init::embedding(&mut rng, corpus.vocab.len(), cfg.word_dim)
                    };
                    TextEncoder::cnn(
                        &mut rng,
                        CnnConfig {
                            vocab: corpus.vocab.len(),
                            word_dim: cfg.word_dim,
                            widths: cfg.widths.clone(),
                            filters_per_width: cfg.filters_per_width,
                            out_dim: cfg.dim,
                            max_len: cfg.max_len,
                        },
                        Embedding::from_matrix(vectors),
                    )
                }
                EncoderKind::Bert => TextEncoder::bert(
                    &mut rng,
                    TransformerConfig {
                        vocab: corpus.vocab.len(),
                        // The BERT-style encoder's width doubles as the
                        // entity dimension ([CLS] state is the
                        // representation).
                        dim: cfg.dim.max(16),
                        heads: 4,
                        layers: 4,
                        ffn_dim: cfg.dim.max(16) * 4,
                        max_len: cfg.max_len.max(8),
                    },
                ),
            };
            let ent_dim = encoder.out_dim();
            // The paper: "we use randomly initialized learnable vectors
            // to represent relations". See
            // `PgeConfig::rotate_phase_init` for the RotatE-specific
            // choice between Xavier and ±π phases.
            let relations = if cfg.score == ScoreKind::RotatE && cfg.rotate_phase_init {
                Embedding::new_phases(&mut rng, graph.num_attrs().max(1), scorer.rel_dim(ent_dim))
            } else {
                Embedding::new_xavier(&mut rng, graph.num_attrs().max(1), scorer.rel_dim(ent_dim))
            };
            PgeModel::new(corpus.vocab, encoder, relations, scorer, graph)
        }
    };
    let ent_dim = model.encoder.out_dim();

    // 2. Negative sampler + confidence store + backend updater.
    let sampler = NegativeSampler::new(graph, cfg.sampling);
    let mut confidence =
        ConfidenceStore::new(dataset.train.len(), cfg.alpha, cfg.beta, cfg.confidence_lr);
    let mut updater: Box<dyn ConfidenceUpdater> =
        cfg.confidence.make_updater(graph.num_attrs(), ent_dim);
    if let Some(state) = &resumed {
        confidence
            .restore_scores(&state.confidence)
            .map_err(PersistError::Mismatch)?;
        updater
            .restore_aux(&state.aux)
            .map_err(PersistError::Mismatch)?;
    }

    // 3. Minibatch Adam over Eq. (3)/(6).
    let hp = AdamHparams::with_lr(cfg.lr);
    let k = cfg.negatives.max(1);
    let mut order: Vec<usize> = (0..dataset.train.len()).collect();
    let mut step: u64 = resumed.as_ref().map_or(0, |s| s.step);
    let start_epoch = resumed.as_ref().map_or(0, |s| s.epochs_done);
    let mut epoch_losses = resumed.as_ref().map_or_else(
        || Vec::with_capacity(cfg.epochs),
        |s| s.epoch_losses.clone(),
    );
    let mut telemetry = Vec::with_capacity(cfg.epochs);
    let is_cnn = matches!(model.encoder, TextEncoder::Cnn(_));
    let workers = if is_cnn {
        resolve_threads(cfg.threads)
    } else {
        1
    };
    // Lane buffers (CNN path only), allocated once and reused.
    let mut lanes: Vec<Lane> = if is_cnn {
        let TextEncoder::Cnn(enc) = &model.encoder else {
            unreachable!()
        };
        Lane::buffers(enc, model.scorer.rel_dim(ent_dim))
    } else {
        Vec::new()
    };
    let mut worker_busy = vec![0.0f64; workers];
    // Legacy serial scratch (BERT path).
    let mut dh = vec![0.0f32; ent_dim];
    let mut dr = vec![0.0f32; model.scorer.rel_dim(ent_dim)];
    let mut dv = vec![0.0f32; ent_dim];
    // Each epoch is one trace in the process-wide flight recorder:
    // its shuffle / batch / checkpoint phases become stage events, so
    // a stalled epoch shows up in `pge trace` with the slow phase
    // attributed.
    let tracer = global_tracer();
    for epoch in start_epoch..cfg.epochs {
        let _epoch_span = span("train.epoch");
        let epoch_start = Instant::now();
        let trace = tracer.begin();
        tracer.record(trace, Stage::EpochStart, epoch as u64);
        worker_busy.iter_mut().for_each(|b| *b = 0.0);
        // Fisher–Yates shuffle over a fresh identity permutation, from
        // a per-`(seed, epoch)` stream: epoch k's visit order is the
        // same whether the run started at epoch 0 or resumed from a
        // checkpoint, and no RNG state survives the epoch.
        tracer.record(trace, Stage::EpochShuffle, order.len() as u64);
        for (i, slot) in order.iter_mut().enumerate() {
            *slot = i;
        }
        let mut shuffle_rng = StdRng::seed_from_u64(shuffle_seed(cfg.seed, epoch));
        for i in (1..order.len()).rev() {
            order.swap(i, shuffle_rng.gen_range(0..=i));
        }
        let confidence_active = cfg.noise_aware && epoch >= cfg.confidence_warmup;
        let mut loss_sum = 0.0f64;
        let mut loss_n = 0usize;
        let mut negs_drawn = 0usize;
        tracer.record(
            trace,
            Stage::EpochBatches,
            order.chunks(cfg.batch.max(1)).len() as u64,
        );
        for batch in order.chunks(cfg.batch.max(1)) {
            step += 1;
            if is_cnn {
                // Fan out: workers accumulate into their lanes against
                // a shared read-only model.
                {
                    let TextEncoder::Cnn(enc) = &model.encoder else {
                        unreachable!()
                    };
                    let ctx = BatchCtx {
                        enc,
                        relations: &model.relations,
                        scorer: model.scorer,
                        title_tokens: &model.title_tokens,
                        value_tokens: &model.value_tokens,
                        train: &dataset.train,
                        sampler: &sampler,
                        confidence: &confidence,
                        confidence_active,
                        capture_contrast: confidence_active && updater.wants_contrast(),
                        k,
                        epoch,
                        seed: cfg.seed,
                    };
                    let per_worker = GRAD_LANES.div_ceil(workers);
                    if workers == 1 {
                        let t0 = Instant::now();
                        run_lanes(&ctx, batch, &mut lanes, 0);
                        worker_busy[0] += t0.elapsed().as_secs_f64();
                    } else {
                        std::thread::scope(|s| {
                            let handles: Vec<_> = lanes
                                .chunks_mut(per_worker)
                                .enumerate()
                                .map(|(w, chunk)| {
                                    let ctx = &ctx;
                                    s.spawn(move || {
                                        let t0 = Instant::now();
                                        run_lanes(ctx, batch, chunk, w * per_worker);
                                        (w, t0.elapsed().as_secs_f64())
                                    })
                                })
                                .collect();
                            for h in handles {
                                let (w, busy) = h.join().expect("training worker panicked");
                                worker_busy[w] += busy;
                            }
                        });
                    }
                }
                // Reduce in fixed lane order — independent of the
                // thread count — then take the single Adam step.
                let PgeModel {
                    encoder, relations, ..
                } = &mut model;
                let TextEncoder::Cnn(enc) = encoder else {
                    unreachable!()
                };
                for lane in &mut lanes {
                    enc.apply_grads(&mut lane.grads);
                    relations.apply_sparse_grads(&mut lane.rel);
                    for sig in lane.conf.drain(..) {
                        updater.apply(&mut confidence, sig);
                    }
                    loss_sum += lane.loss_sum;
                    loss_n += lane.loss_n;
                    negs_drawn += lane.negs;
                    lane.loss_sum = 0.0;
                    lane.loss_n = 0;
                    lane.negs = 0;
                }
            } else {
                // Legacy serial path: the BERT backward pass still
                // mutates inline parameter gradients.
                for &i in batch {
                    let triple = dataset.train[i];
                    let title_tokens = &model.title_tokens[triple.product.0 as usize];
                    let value_tokens = &model.value_tokens[triple.value.0 as usize];
                    let (e_t, cache_t) = model.encoder.forward(title_tokens);
                    let (e_v, cache_v) = model.encoder.forward(value_tokens);
                    let r = model.relations.row(triple.attr.0 as u32).to_vec();
                    let f_pos = model.scorer.score(&e_t, &r, &e_v);

                    let negs = sampler.sample(&mut rng, &triple, k);
                    if negs.is_empty() {
                        continue;
                    }
                    negs_drawn += negs.len();
                    let capture_contrast = confidence_active && updater.wants_contrast();
                    let mut f_negs: Vec<f32> = Vec::new();
                    // Loss bookkeeping (Eq. 3 per-triple term).
                    let mut l_i = -ops::log_sigmoid(f_pos);
                    let w = if confidence_active {
                        confidence.get(i)
                    } else {
                        1.0
                    };

                    dh.iter_mut().for_each(|x| *x = 0.0);
                    dr.iter_mut().for_each(|x| *x = 0.0);
                    if w > 0.0 {
                        // Positive term: dL/df⁺ = −σ(−f⁺).
                        dv.iter_mut().for_each(|x| *x = 0.0);
                        let df_pos = -w * ops::sigmoid(-f_pos);
                        model
                            .scorer
                            .backward(&e_t, &r, &e_v, df_pos, &mut dh, &mut dr, &mut dv);
                        model.encoder.backward(&cache_v, &dv);
                    }
                    let inv_k = 1.0 / negs.len() as f32;
                    for &neg in &negs {
                        let neg_tokens = &model.value_tokens[neg.0 as usize];
                        let (e_n, cache_n) = model.encoder.forward(neg_tokens);
                        let f_neg = model.scorer.score(&e_t, &r, &e_n);
                        l_i += -inv_k * ops::log_sigmoid(-f_neg);
                        if capture_contrast {
                            f_negs.push(f_neg);
                        }
                        if w > 0.0 {
                            // Negative term: dL/df⁻ = σ(f⁻)/k.
                            dv.iter_mut().for_each(|x| *x = 0.0);
                            let df_neg = w * inv_k * ops::sigmoid(f_neg);
                            model
                                .scorer
                                .backward(&e_t, &r, &e_n, df_neg, &mut dh, &mut dr, &mut dv);
                            model.encoder.backward(&cache_n, &dv);
                        }
                    }
                    if w > 0.0 {
                        model.encoder.backward(&cache_t, &dh);
                        model.relations.accumulate_grad(triple.attr.0 as u32, &dr);
                    }
                    if confidence_active {
                        let (contrast, value_emb) = if capture_contrast {
                            (info_nce(f_pos, &f_negs), e_v.clone())
                        } else {
                            (0.0, Vec::new())
                        };
                        updater.apply(
                            &mut confidence,
                            ConfidenceSignal {
                                index: i,
                                triple_loss: l_i,
                                contrast,
                                attr: triple.attr.0,
                                value_emb,
                            },
                        );
                    }
                    loss_sum += l_i as f64;
                    loss_n += 1;
                }
            }
            model.encoder.adam_step(&hp, step);
            model.relations.adam_step(&hp, step);
        }
        epoch_losses.push(if loss_n == 0 {
            0.0
        } else {
            (loss_sum / loss_n as f64) as f32
        });
        let secs = epoch_start.elapsed().as_secs_f64();
        let t = EpochTelemetry {
            epoch,
            mean_loss: *epoch_losses.last().unwrap(),
            triples: loss_n,
            negatives: negs_drawn,
            secs,
            triples_per_sec: if secs > 0.0 {
                loss_n as f64 / secs
            } else {
                0.0
            },
            threads: workers,
            worker_utilization: if is_cnn && secs > 0.0 {
                worker_busy.iter().map(|b| b / secs).collect()
            } else {
                Vec::new()
            },
            confidence: cfg
                .noise_aware
                .then(|| confidence.telemetry(CONFIDENCE_HIST_BINS)),
        };
        if let Some(log) = log {
            log.write(&epoch_event(&t));
        }
        telemetry.push(t);

        if let Some(opts) = ckpt {
            let write_start = Instant::now();
            tracer.record(trace, Stage::EpochCheckpoint, (epoch + 1) as u64);
            let bytes = {
                let _s = span("train.checkpoint");
                let state = TrainerState::capture(
                    &model,
                    &confidence,
                    epoch + 1,
                    step,
                    cfg_hash,
                    data_fp,
                    &epoch_losses,
                    cfg.confidence.name(),
                    &updater.aux_state(),
                )?;
                state.store(&opts.dir)?
            };
            if let Some(log) = log {
                log.write(&checkpoint_event(&[
                    ("epoch", (epoch + 1) as f64),
                    ("bytes", bytes as f64),
                    ("write_secs", write_start.elapsed().as_secs_f64()),
                ]));
            }
            // Simulated kill for resume tests and CI: the checkpoint
            // is on disk, the process "dies" here.
            if opts.stop_after == Some(epoch + 1) {
                tracer.finish(trace, epoch_start.elapsed(), false);
                break;
            }
        }
        tracer.finish(trace, epoch_start.elapsed(), false);
    }

    Ok(TrainedPge {
        model,
        confidence,
        train_secs: start.elapsed().as_secs_f64(),
        epoch_losses,
        telemetry,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pge_graph::{Dataset, LabeledTriple, ProductGraph, Triple};

    /// Tiny two-cluster catalog: spicy products have pepper
    /// ingredients, sweet products have sugar ingredients.
    fn tiny_dataset() -> Dataset {
        let mut g = ProductGraph::new();
        let mut train = Vec::new();
        for i in 0..30 {
            let (flavor, ing, word) = if i % 2 == 0 {
                ("spicy", "cayenne pepper", "hot")
            } else {
                ("sweet", "cane sugar", "honey")
            };
            let title = format!("brand{i} {word} {flavor} snack chips {i}");
            train.push(g.add_fact(&title, "flavor", flavor));
            train.push(g.add_fact(&title, "ingredient", ing));
        }
        // Labeled: held-out products with correct and swapped flavors.
        let mut valid = Vec::new();
        let mut test = Vec::new();
        for i in 0..10 {
            let (flavor, wrong, ing, word) = if i % 2 == 0 {
                ("spicy", "sweet", "cayenne pepper", "hot")
            } else {
                ("sweet", "spicy", "cane sugar", "honey")
            };
            let title = format!("testbrand{i} {word} {flavor} snack chips");
            let pid = g.intern_product(&title);
            let fattr = g.intern_attr("flavor");
            let iattr = g.intern_attr("ingredient");
            let good = Triple::new(pid, fattr, g.intern_value(flavor));
            let bad = Triple::new(pid, fattr, g.intern_value(wrong));
            let ing_t = Triple::new(pid, iattr, g.intern_value(ing));
            g.add_triple(ing_t);
            train.push(ing_t);
            let (lt_good, lt_bad) = (
                LabeledTriple {
                    triple: good,
                    correct: true,
                },
                LabeledTriple {
                    triple: bad,
                    correct: false,
                },
            );
            if i < 4 {
                valid.push(lt_good);
                valid.push(lt_bad);
            } else {
                test.push(lt_good);
                test.push(lt_bad);
            }
        }
        Dataset::new(g, train, valid, test)
    }

    #[test]
    fn loss_decreases_over_training() {
        let d = tiny_dataset();
        let out = train_pge(&d, &PgeConfig::tiny());
        let first = out.epoch_losses.first().copied().unwrap();
        let last = out.epoch_losses.last().copied().unwrap();
        assert!(
            last < first * 0.9,
            "loss did not decrease: {:?}",
            out.epoch_losses
        );
    }

    #[test]
    fn learns_to_separate_correct_from_swapped() {
        let d = tiny_dataset();
        // Per-attribute negatives make "the other flavor" a frequent
        // corruption, which this tiny dataset needs to separate the
        // two flavors per-title within few epochs; the bumped learning
        // rate gets the margin clear of noise in that budget.
        let cfg = PgeConfig {
            epochs: 30,
            lr: 1e-2,
            sampling: SamplingMode::PerAttribute,
            ..PgeConfig::tiny()
        };
        let out = train_pge(&d, &cfg);
        let mut good = 0.0;
        let mut bad = 0.0;
        for lt in &d.test {
            let f = out.model.score_triple(&lt.triple);
            if lt.correct {
                good += f;
            } else {
                bad += f;
            }
        }
        let n = (d.test.len() / 2) as f32;
        assert!(
            good / n > bad / n,
            "mean f(correct)={} should exceed mean f(wrong)={}",
            good / n,
            bad / n
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let d = tiny_dataset();
        let a = train_pge(&d, &PgeConfig::tiny());
        let b = train_pge(&d, &PgeConfig::tiny());
        let t = d.test[0].triple;
        assert_eq!(a.model.score_triple(&t), b.model.score_triple(&t));
    }

    #[test]
    fn thread_count_does_not_change_results() {
        // The tentpole guarantee: the fixed-lane partition and
        // fixed-order reduction make results *bit-identical* for any
        // worker count at the same seed.
        let d = tiny_dataset();
        let score_all = |out: &TrainedPge| -> Vec<f32> {
            d.test
                .iter()
                .map(|lt| out.model.score_triple(&lt.triple))
                .collect()
        };
        let base = train_pge(
            &d,
            &PgeConfig {
                threads: 1,
                ..PgeConfig::tiny()
            },
        );
        for threads in [2, 8] {
            let out = train_pge(
                &d,
                &PgeConfig {
                    threads,
                    ..PgeConfig::tiny()
                },
            );
            assert_eq!(score_all(&base), score_all(&out), "threads={threads}");
            assert_eq!(
                base.epoch_losses, out.epoch_losses,
                "losses diverged at threads={threads}"
            );
            assert_eq!(
                base.confidence.scores(),
                out.confidence.scores(),
                "confidences diverged at threads={threads}"
            );
        }
    }

    #[test]
    fn telemetry_reports_threads_and_worker_utilization() {
        let d = tiny_dataset();
        let cfg = PgeConfig {
            threads: 2,
            ..PgeConfig::tiny()
        };
        let out = train_pge(&d, &cfg);
        for t in &out.telemetry {
            assert_eq!(t.threads, 2);
            assert_eq!(t.worker_utilization.len(), 2);
            assert!(t.worker_utilization.iter().all(|&u| u >= 0.0));
        }
    }

    #[test]
    fn resolve_threads_clamps_to_lane_count() {
        assert_eq!(resolve_threads(1), 1);
        assert_eq!(resolve_threads(GRAD_LANES + 50), GRAD_LANES);
        assert!(resolve_threads(0) >= 1, "auto-detect must give >= 1");
    }

    #[test]
    fn transe_variant_trains_too() {
        let d = tiny_dataset();
        let cfg = PgeConfig {
            score: ScoreKind::TransE,
            ..PgeConfig::tiny()
        };
        let out = train_pge(&d, &cfg);
        assert!(out.epoch_losses.last().unwrap() < out.epoch_losses.first().unwrap());
    }

    #[test]
    fn noise_aware_flags_injected_noise() {
        let mut d = tiny_dataset();
        // Corrupt 20% of training triples.
        let mut rng = StdRng::seed_from_u64(99);
        let (noisy, clean) = pge_graph::inject_noise(&d.graph, &d.train, 0.2, &mut rng);
        d.train = noisy;
        d.train_clean = clean;
        let cfg = PgeConfig {
            epochs: 14,
            ..PgeConfig::tiny()
        };
        let out = train_pge(&d, &cfg);
        // Mean confidence of clean triples should exceed noisy ones.
        let (mut c_clean, mut n_clean, mut c_noisy, mut n_noisy) = (0.0, 0, 0.0, 0);
        for (i, &is_clean) in d.train_clean.iter().enumerate() {
            if is_clean {
                c_clean += out.confidence.get(i);
                n_clean += 1;
            } else {
                c_noisy += out.confidence.get(i);
                n_noisy += 1;
            }
        }
        let mean_clean = c_clean / n_clean as f32;
        let mean_noisy = c_noisy / n_noisy as f32;
        assert!(
            mean_clean > mean_noisy,
            "clean {mean_clean} vs noisy {mean_noisy}"
        );
    }

    #[test]
    fn telemetry_tracks_confidence_polarization() {
        let mut d = tiny_dataset();
        let mut rng = StdRng::seed_from_u64(99);
        let (noisy, clean) = pge_graph::inject_noise(&d.graph, &d.train, 0.2, &mut rng);
        d.train = noisy;
        d.train_clean = clean;
        // A stronger β than the defaults so re-polarization completes
        // within the test's epoch budget (the dynamic, not the speed,
        // is what's under test).
        let cfg = PgeConfig {
            epochs: 20,
            beta: 0.3,
            confidence_lr: 0.1,
            ..PgeConfig::tiny()
        };
        let out = train_pge(&d, &cfg);
        assert_eq!(out.telemetry.len(), cfg.epochs);
        for (i, t) in out.telemetry.iter().enumerate() {
            assert_eq!(t.epoch, i);
            assert_eq!(t.mean_loss, out.epoch_losses[i]);
            assert!(t.triples > 0 && t.negatives >= t.triples);
            let conf = t.confidence.as_ref().expect("noise-aware run");
            assert_eq!(conf.hist.iter().sum::<u64>() as usize, d.train.len());
        }
        // During warmup every C sits at its 1.0 init → fully polarized.
        let frac = |e: usize| out.telemetry[e].confidence.as_ref().unwrap().polarized_frac;
        for e in 0..cfg.confidence_warmup {
            assert_eq!(frac(e), 1.0, "epoch {e} is pre-activation");
        }
        // Activation moves scores off the pole; by the end the β term
        // has re-polarized most of them (the Eq. 6 dynamic).
        let post: Vec<f32> = (cfg.confidence_warmup..cfg.epochs).map(frac).collect();
        let dip = post.iter().copied().fold(f32::INFINITY, f32::min);
        let last = *post.last().unwrap();
        assert!(dip < 1.0, "confidence never left the pole: {post:?}");
        assert!(
            last > dip && last > 0.5,
            "polarization did not recover: dip {dip}, last {last}, trend {post:?}"
        );
    }

    #[test]
    fn telemetry_confidence_absent_without_noise_aware() {
        let d = tiny_dataset();
        let cfg = PgeConfig {
            noise_aware: false,
            ..PgeConfig::tiny()
        };
        let out = train_pge(&d, &cfg);
        assert_eq!(out.telemetry.len(), cfg.epochs);
        assert!(out.telemetry.iter().all(|t| t.confidence.is_none()));
    }

    #[test]
    fn train_with_log_streams_epoch_events() {
        use pge_obs::json::parse;
        use std::io;
        use std::sync::{Arc, Mutex};

        #[derive(Clone, Default)]
        struct Buf(Arc<Mutex<Vec<u8>>>);
        impl io::Write for Buf {
            fn write(&mut self, b: &[u8]) -> io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(b);
                Ok(b.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }

        let d = tiny_dataset();
        let buf = Buf::default();
        let log = RunLog::to_writer(buf.clone());
        let cfg = PgeConfig::tiny();
        let out = train_pge_with_log(&d, &cfg, Some(&log));
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), cfg.epochs);
        for (i, line) in lines.iter().enumerate() {
            let e = parse(line).unwrap();
            assert_eq!(e.get("event").unwrap().as_str(), Some("epoch"));
            assert_eq!(e.get("epoch").unwrap().as_f64(), Some(i as f64));
            assert_eq!(
                e.get("mean_loss").unwrap().as_f64(),
                Some(out.epoch_losses[i] as f64)
            );
        }
    }

    #[test]
    fn without_noise_aware_confidences_stay_one() {
        let d = tiny_dataset();
        let cfg = PgeConfig {
            noise_aware: false,
            ..PgeConfig::tiny()
        };
        let out = train_pge(&d, &cfg);
        assert!(out.confidence.scores().iter().all(|&c| c == 1.0));
    }

    #[test]
    fn cca_backend_trains_and_is_thread_invariant() {
        let mut d = tiny_dataset();
        let mut rng = StdRng::seed_from_u64(99);
        let (noisy, clean) = pge_graph::inject_noise(&d.graph, &d.train, 0.2, &mut rng);
        d.train = noisy;
        d.train_clean = clean;
        let cfg = |threads| PgeConfig {
            confidence: ConfidenceBackend::Cca,
            threads,
            ..PgeConfig::tiny()
        };
        let base = train_pge(&d, &cfg(1));
        // Scores moved off the all-ones init and stayed in range.
        assert!(base.confidence.scores().iter().any(|&c| c < 1.0));
        assert!(base
            .confidence
            .scores()
            .iter()
            .all(|&c| (0.0..=1.0).contains(&c)));
        // The CCA rule is applied in lane order → thread invariant.
        for threads in [2, 8] {
            let out = train_pge(&d, &cfg(threads));
            assert_eq!(
                base.confidence.scores(),
                out.confidence.scores(),
                "cca confidences diverged at threads={threads}"
            );
            assert_eq!(base.epoch_losses, out.epoch_losses);
        }
        // And it is a genuinely different rule from Eq. 6.
        let pge = train_pge(&d, &PgeConfig::tiny());
        assert_ne!(pge.confidence.scores(), base.confidence.scores());
    }

    #[test]
    fn config_labels() {
        assert_eq!(PgeConfig::default().label(), "PGE(CNN)-RotatE");
        let t = PgeConfig {
            score: ScoreKind::TransE,
            noise_aware: false,
            ..Default::default()
        };
        assert_eq!(t.label(), "PGE(CNN)-TransE w/o noise-aware");
    }

    #[test]
    fn records_train_time() {
        let d = tiny_dataset();
        let out = train_pge(&d, &PgeConfig::tiny());
        assert!(out.train_secs > 0.0);
    }

    #[test]
    fn bert_encoder_variant_trains() {
        let d = tiny_dataset();
        let cfg = PgeConfig {
            encoder: EncoderKind::Bert,
            epochs: 2,
            dim: 16,
            ..PgeConfig::tiny()
        };
        let out = train_pge(&d, &cfg);
        let f = out.model.score_triple(&d.test[0].triple);
        assert!(f.is_finite());
        assert_eq!(out.model.encoder().kind(), EncoderKind::Bert);
    }

    #[test]
    fn all_score_kinds_train() {
        let d = tiny_dataset();
        for score in [
            ScoreKind::TransE,
            ScoreKind::RotatE,
            ScoreKind::DistMult,
            ScoreKind::ComplEx,
        ] {
            let cfg = PgeConfig {
                score,
                epochs: 2,
                ..PgeConfig::tiny()
            };
            let out = train_pge(&d, &cfg);
            assert!(
                out.model.score_triple(&d.test[0].triple).is_finite(),
                "{score:?}"
            );
        }
    }

    #[test]
    fn empty_training_set_does_not_panic() {
        let mut d = tiny_dataset();
        d.train.clear();
        d.train_clean.clear();
        let out = train_pge(&d, &PgeConfig::tiny());
        assert_eq!(out.confidence.len(), 0);
        // Scores remain finite: untrained encoder on unk-only vocab.
        assert!(out.model.score_triple(&d.test[0].triple).is_finite());
    }

    #[test]
    fn per_attribute_sampling_config_works() {
        let d = tiny_dataset();
        let cfg = PgeConfig {
            sampling: SamplingMode::PerAttribute,
            epochs: 2,
            ..PgeConfig::tiny()
        };
        let out = train_pge(&d, &cfg);
        assert!(out.epoch_losses.iter().all(|l| l.is_finite()));
    }

    #[test]
    fn word2vec_disabled_still_trains() {
        let d = tiny_dataset();
        let cfg = PgeConfig {
            word2vec_epochs: 0,
            epochs: 3,
            ..PgeConfig::tiny()
        };
        let out = train_pge(&d, &cfg);
        assert!(out.epoch_losses.last().unwrap() < out.epoch_losses.first().unwrap());
    }
}
