//! Structure-based KG embedding baselines: id-embedded entities with
//! TransE / DistMult / ComplEx / RotatE scoring.
//!
//! This is the classic setup the paper contrasts PGE against: every
//! product title and every value string gets an *opaque id* and a
//! learnable vector. Surface variants of the same concept ("chipotle
//! pepper" / "chipotle pepper powder") become unrelated entities —
//! exactly the weakness (C1) the paper identifies.

use pge_core::{ErrorDetector, ScoreKind, Scorer};
use pge_graph::{Dataset, NegativeSampler, ProductGraph, SamplingMode, Triple};
use pge_nn::{AdamHparams, Embedding};
use pge_tensor::ops;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// Training knobs for the id-based KGE baselines.
#[derive(Clone, Debug)]
pub struct KgeConfig {
    pub dim: usize,
    pub score: ScoreKind,
    pub gamma: f32,
    pub epochs: usize,
    pub batch: usize,
    pub negatives: usize,
    pub lr: f32,
    pub sampling: SamplingMode,
    /// Self-adversarial negative weighting temperature (Sun et al.,
    /// 2019): negatives are weighted by softmax(α·f) instead of 1/k.
    /// `None` = uniform weighting.
    pub adversarial_temp: Option<f32>,
    pub seed: u64,
}

impl Default for KgeConfig {
    fn default() -> Self {
        KgeConfig {
            dim: 32,
            score: ScoreKind::RotatE,
            gamma: 6.0,
            epochs: 25,
            batch: 256,
            negatives: 4,
            lr: 1e-2,
            sampling: SamplingMode::GlobalUniform,
            adversarial_temp: Some(1.0),
            seed: 21,
        }
    }
}

impl KgeConfig {
    pub fn tiny() -> Self {
        KgeConfig {
            dim: 16,
            epochs: 10,
            ..Default::default()
        }
    }
}

/// A trained id-based KGE model.
pub struct KgeModel {
    pub heads: Embedding,
    pub tails: Embedding,
    pub rels: Embedding,
    pub scorer: Scorer,
    /// Wall-clock training seconds (Table 3/5 columns).
    pub train_secs: f64,
    pub(crate) name: String,
}

impl KgeModel {
    pub fn score(&self, t: &Triple) -> f32 {
        self.scorer.score(
            self.heads.row(t.product.0),
            self.rels.row(t.attr.0 as u32),
            self.tails.row(t.value.0),
        )
    }
}

impl ErrorDetector for KgeModel {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn plausibility(&self, _graph: &ProductGraph, t: &Triple) -> f32 {
        self.score(t)
    }
}

/// Train an id-based KGE baseline on the dataset's training split.
///
/// `weights`, when given, is a per-training-triple loss weight
/// (parallel to `dataset.train`); CKRL reuses this entry point with
/// its confidence weights.
pub fn train_kge(dataset: &Dataset, cfg: &KgeConfig) -> KgeModel {
    train_kge_weighted(dataset, cfg, None, cfg.score.name().to_string())
}

pub(crate) fn train_kge_weighted(
    dataset: &Dataset,
    cfg: &KgeConfig,
    weights: Option<&[f32]>,
    name: String,
) -> KgeModel {
    let start = Instant::now();
    let graph = &dataset.graph;
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let scorer = Scorer::new(cfg.score, cfg.gamma);
    // Embedding tables sized for the full graph (test entities get
    // vectors too; for held-out entities they simply stay untrained —
    // this is precisely why id-based KGE cannot do inductive
    // detection).
    let mut heads = Embedding::new_xavier(&mut rng, graph.num_products().max(1), cfg.dim);
    let mut tails = Embedding::new_xavier(&mut rng, graph.num_values().max(1), cfg.dim);
    // RotatE relations are rotation phases; the original initializes
    // them uniform in [-π, π] (identity-like Xavier phases break
    // symmetry far too slowly).
    let mut rels = if cfg.score == ScoreKind::RotatE {
        Embedding::new_phases(&mut rng, graph.num_attrs().max(1), scorer.rel_dim(cfg.dim))
    } else {
        Embedding::new_xavier(&mut rng, graph.num_attrs().max(1), scorer.rel_dim(cfg.dim))
    };
    let sampler = NegativeSampler::new(graph, cfg.sampling);
    let hp = AdamHparams::with_lr(cfg.lr);

    let k = cfg.negatives.max(1);
    let mut order: Vec<usize> = (0..dataset.train.len()).collect();
    let mut step = 0u64;
    let mut dh = vec![0.0f32; cfg.dim];
    let mut dr = vec![0.0f32; scorer.rel_dim(cfg.dim)];
    let mut dt = vec![0.0f32; cfg.dim];
    for _epoch in 0..cfg.epochs {
        for i in (1..order.len()).rev() {
            order.swap(i, rng.gen_range(0..=i));
        }
        for batch in order.chunks(cfg.batch.max(1)) {
            step += 1;
            for &i in batch {
                let triple = dataset.train[i];
                let w = weights.map_or(1.0, |ws| ws[i]);
                if w <= 0.0 {
                    continue;
                }
                let negs = sampler.sample(&mut rng, &triple, k);
                if negs.is_empty() {
                    continue;
                }
                let h = heads.row(triple.product.0).to_vec();
                let r = rels.row(triple.attr.0 as u32).to_vec();
                let t = tails.row(triple.value.0).to_vec();
                dh.iter_mut().for_each(|x| *x = 0.0);
                dr.iter_mut().for_each(|x| *x = 0.0);
                dt.iter_mut().for_each(|x| *x = 0.0);
                let f_pos = scorer.score(&h, &r, &t);
                scorer.backward(
                    &h,
                    &r,
                    &t,
                    -w * ops::sigmoid(-f_pos),
                    &mut dh,
                    &mut dr,
                    &mut dt,
                );
                tails.accumulate_grad(triple.value.0, &dt);
                // Negative weights: uniform 1/k or self-adversarial
                // softmax(α·f_neg) (hard negatives dominate).
                let f_negs: Vec<f32> = negs
                    .iter()
                    .map(|&n| scorer.score(&h, &r, tails.row(n.0)))
                    .collect();
                let neg_w = negative_weights(&f_negs, cfg.adversarial_temp);
                for (j, &neg) in negs.iter().enumerate() {
                    let tn = tails.row(neg.0).to_vec();
                    dt.iter_mut().for_each(|x| *x = 0.0);
                    scorer.backward(
                        &h,
                        &r,
                        &tn,
                        w * neg_w[j] * ops::sigmoid(f_negs[j]),
                        &mut dh,
                        &mut dr,
                        &mut dt,
                    );
                    tails.accumulate_grad(neg.0, &dt);
                }
                heads.accumulate_grad(triple.product.0, &dh);
                rels.accumulate_grad(triple.attr.0 as u32, &dr);
            }
            heads.adam_step(&hp, step);
            tails.adam_step(&hp, step);
            rels.adam_step(&hp, step);
        }
    }

    KgeModel {
        heads,
        tails,
        rels,
        scorer,
        train_secs: start.elapsed().as_secs_f64(),
        name,
    }
}

/// Per-negative loss weights: uniform or self-adversarial softmax.
pub(crate) fn negative_weights(f_negs: &[f32], temp: Option<f32>) -> Vec<f32> {
    match temp {
        None => vec![1.0 / f_negs.len().max(1) as f32; f_negs.len()],
        Some(a) => {
            let mut w: Vec<f32> = f_negs.iter().map(|&f| a * f).collect();
            ops::softmax_inplace(&mut w);
            w
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pge_graph::{LabeledTriple, ValueId};

    /// Structure-only dataset: attribute "r" links products to values
    /// with a strict parity pattern (even products → even values).
    fn parity_dataset() -> Dataset {
        let mut g = ProductGraph::new();
        let mut train = Vec::new();
        for p in 0..40u32 {
            for v in 0..3u32 {
                let value = 2 * v + (p % 2);
                train.push(g.add_fact(&format!("p{p}"), "r", &format!("v{value}")));
            }
        }
        // Test: correct = matching parity (held out), incorrect = off.
        let mut test = Vec::new();
        for p in 0..10u32 {
            let pid = g.lookup_product(&format!("p{p}")).unwrap();
            let attr = g.lookup_attr("r").unwrap();
            let good_v = g.lookup_value(&format!("v{}", 4 + (p % 2))).unwrap();
            let bad_v = g.lookup_value(&format!("v{}", 4 + ((p + 1) % 2))).unwrap();
            test.push(LabeledTriple {
                triple: Triple::new(pid, attr, good_v),
                correct: true,
            });
            test.push(LabeledTriple {
                triple: Triple::new(pid, attr, bad_v),
                correct: false,
            });
        }
        Dataset::new(g, train, vec![], test)
    }

    #[test]
    fn learns_graph_structure() {
        for kind in [ScoreKind::TransE, ScoreKind::RotatE, ScoreKind::DistMult] {
            let d = parity_dataset();
            let cfg = KgeConfig {
                score: kind,
                epochs: 20,
                ..KgeConfig::tiny()
            };
            let m = train_kge(&d, &cfg);
            let mut good = 0.0;
            let mut bad = 0.0;
            for lt in &d.test {
                let f = m.score(&lt.triple);
                if lt.correct {
                    good += f;
                } else {
                    bad += f;
                }
            }
            assert!(
                good > bad,
                "{kind:?}: correct triples should outscore corrupted ones ({good} vs {bad})"
            );
        }
    }

    #[test]
    fn zero_weight_triples_are_skipped() {
        let d = parity_dataset();
        let weights = vec![0.0; d.train.len()];
        let m = train_kge_weighted(&d, &KgeConfig::tiny(), Some(&weights), "w0".into());
        // With all weights zero no embedding moves: scores for two
        // different runs must be identical to a fresh init.
        let m2 = train_kge_weighted(&d, &KgeConfig::tiny(), Some(&weights), "w0".into());
        let t = d.test[0].triple;
        assert_eq!(m.score(&t), m2.score(&t));
    }

    #[test]
    fn name_reflects_score_kind() {
        let d = parity_dataset();
        let m = train_kge(
            &d,
            &KgeConfig {
                epochs: 1,
                score: ScoreKind::ComplEx,
                ..KgeConfig::tiny()
            },
        );
        assert_eq!(m.name(), "ComplEx");
        assert!(m.train_secs > 0.0);
    }

    #[test]
    fn negative_weights_sum_to_one_and_favor_hard() {
        let uniform = negative_weights(&[0.0, 1.0, 2.0], None);
        assert!(uniform.iter().all(|&w| (w - 1.0 / 3.0).abs() < 1e-6));
        let adv = negative_weights(&[0.0, 1.0, 2.0], Some(1.0));
        assert!((adv.iter().sum::<f32>() - 1.0).abs() < 1e-5);
        assert!(adv[2] > adv[1] && adv[1] > adv[0]);
    }

    #[test]
    fn detector_trait_plumbs_through() {
        let d = parity_dataset();
        let m = train_kge(
            &d,
            &KgeConfig {
                epochs: 2,
                ..KgeConfig::tiny()
            },
        );
        let triples: Vec<Triple> = d.test.iter().map(|lt| lt.triple).collect();
        let scores = m.plausibility_all(&d.graph, &triples);
        assert_eq!(scores.len(), triples.len());
        let _ = ValueId(0);
    }
}
