//! The paper's baseline suite (§4.2, "Compared Methods").
//!
//! | Family | Methods | Module |
//! |---|---|---|
//! | Structure-based KG embedding | TransE, DistMult, ComplEx, RotatE | [`kge`] |
//! | Noise-aware KG embedding | CKRL | [`ckrl`] |
//! | NLP-based | LSTM, Transformer | [`nlp`] |
//! | Text + KG joint embedding | DKRL, SSP | [`dkrl`], [`ssp`] |
//! | Extraction-enriched | RotatE+ (OpenTag-lite → RotatE) | [`opentag`] |
//! | Ensemble | Union of Transformer and PGE | [`union`] |
//!
//! Every model implements [`pge_core::ErrorDetector`], so the bench
//! harness evaluates all of them through one code path.

pub mod ckrl;
pub mod dkrl;
pub mod kge;
pub mod nlp;
pub mod opentag;
pub mod ssp;
pub mod union;

pub use ckrl::{train_ckrl, CkrlConfig, CkrlModel};
pub use dkrl::{train_dkrl, DkrlConfig, DkrlModel};
pub use kge::{train_kge, KgeConfig, KgeModel};
pub use nlp::{train_nlp, NlpArch, NlpConfig, NlpModel};
pub use opentag::{extract_attributes, train_rotate_plus, OpenTagLexicon};
pub use ssp::{train_ssp, SspConfig, SspModel};
pub use union::Union;
