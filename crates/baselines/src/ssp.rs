//! SSP (Xiao et al., 2017): semantic space projection — the second
//! "text and KG joint embedding" baseline.
//!
//! SSP learns *structural* embeddings whose TransE residual
//! `e = h + r − t` is scored inside the hyperplane orthogonal to a
//! **separately pre-trained** semantic vector `ŝ` of the entity pair:
//! `f = γ − (μ·‖e − (eᵀŝ)ŝ‖₁ + (1−μ)·‖e‖₁)`. Following the original's
//! "Std" setting, the semantic vectors are fixed during embedding
//! training. The original obtains them from a topic model (NMF); we
//! compose them from in-repo word2vec vectors (normalized mean over
//! the entity's tokens), which preserves the architectural property
//! the PGE paper critiques: text only enters through a separately
//! learned, frozen vector.

use pge_core::corpus::build_corpus;
use pge_core::ErrorDetector;
use pge_graph::{Dataset, NegativeSampler, ProductGraph, SamplingMode, Triple};
use pge_nn::{AdamHparams, Embedding};
use pge_tensor::{ops, Matrix};
use pge_text::tokenize;
use pge_text::word2vec::{train_word2vec, Word2VecConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// SSP training knobs.
#[derive(Clone, Debug)]
pub struct SspConfig {
    pub dim: usize,
    pub gamma: f32,
    /// Weight μ of the projected residual vs. the raw residual.
    pub mu: f32,
    pub epochs: usize,
    pub batch: usize,
    pub negatives: usize,
    pub lr: f32,
    pub sampling: SamplingMode,
    pub seed: u64,
}

impl Default for SspConfig {
    fn default() -> Self {
        SspConfig {
            dim: 32,
            gamma: 6.0,
            mu: 0.8,
            epochs: 20,
            batch: 256,
            negatives: 4,
            lr: 1e-2,
            sampling: SamplingMode::GlobalUniform,
            seed: 41,
        }
    }
}

impl SspConfig {
    pub fn tiny() -> Self {
        SspConfig {
            dim: 16,
            epochs: 10,
            ..Default::default()
        }
    }
}

/// A trained SSP model.
pub struct SspModel {
    heads: Embedding,
    tails: Embedding,
    rels: Embedding,
    /// Fixed semantic vectors (dim = structural dim) per product/value.
    sem_heads: Matrix,
    sem_tails: Matrix,
    gamma: f32,
    mu: f32,
    pub train_secs: f64,
}

impl SspModel {
    /// The SSP score with semantic projection.
    pub fn score(&self, t: &Triple) -> f32 {
        let h = self.heads.row(t.product.0);
        let r = self.rels.row(t.attr.0 as u32);
        let tt = self.tails.row(t.value.0);
        let s = composed_semantic(
            self.sem_heads.row(t.product.0 as usize),
            self.sem_tails.row(t.value.0 as usize),
        );
        let mut proj_norm = 0.0;
        let mut raw_norm = 0.0;
        let mut e_dot_s = 0.0;
        let dim = h.len();
        let mut e = vec![0.0f32; dim];
        for i in 0..dim {
            e[i] = h[i] + r[i] - tt[i];
            e_dot_s += e[i] * s[i];
            raw_norm += e[i].abs();
        }
        for i in 0..dim {
            proj_norm += (e[i] - e_dot_s * s[i]).abs();
        }
        self.gamma - (self.mu * proj_norm + (1.0 - self.mu) * raw_norm)
    }
}

/// ŝ = normalize(s_h + s_t); falls back to a zero vector (projection
/// becomes a no-op) when both semantic vectors vanish.
fn composed_semantic(sh: &[f32], st: &[f32]) -> Vec<f32> {
    let mut s: Vec<f32> = sh.iter().zip(st).map(|(a, b)| a + b).collect();
    ops::l2_normalize(&mut s);
    s
}

impl ErrorDetector for SspModel {
    fn name(&self) -> String {
        "SSP".into()
    }

    fn plausibility(&self, _graph: &ProductGraph, t: &Triple) -> f32 {
        self.score(t)
    }
}

/// Train SSP on the dataset's training split.
pub fn train_ssp(dataset: &Dataset, cfg: &SspConfig) -> SspModel {
    let start = Instant::now();
    let graph = &dataset.graph;
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    // Fixed semantic vectors from word2vec over the training corpus.
    let corpus = build_corpus(graph, &dataset.train);
    let word_vecs = train_word2vec(
        &corpus.vocab,
        &corpus.sentences,
        &Word2VecConfig {
            dim: cfg.dim,
            epochs: 2,
            seed: cfg.seed ^ 0xabc,
            ..Default::default()
        },
    );
    let semantic_of = |text: &str| -> Vec<f32> {
        let mut v = vec![0.0f32; cfg.dim];
        let mut n = 0usize;
        for w in tokenize(text) {
            if let Some(id) = corpus.vocab.get(&w) {
                ops::axpy(1.0, word_vecs.row(id as usize), &mut v);
                n += 1;
            }
        }
        if n > 0 {
            v.iter_mut().for_each(|x| *x /= n as f32);
        }
        ops::l2_normalize(&mut v);
        v
    };
    let mut sem_heads = Matrix::zeros(graph.num_products().max(1), cfg.dim);
    for i in 0..graph.num_products() {
        let v = semantic_of(graph.title(pge_graph::ProductId(i as u32)));
        sem_heads.row_mut(i).copy_from_slice(&v);
    }
    let mut sem_tails = Matrix::zeros(graph.num_values().max(1), cfg.dim);
    for i in 0..graph.num_values() {
        let v = semantic_of(graph.value_text(pge_graph::ValueId(i as u32)));
        sem_tails.row_mut(i).copy_from_slice(&v);
    }

    let mut heads = Embedding::new_xavier(&mut rng, graph.num_products().max(1), cfg.dim);
    let mut tails = Embedding::new_xavier(&mut rng, graph.num_values().max(1), cfg.dim);
    let mut rels = Embedding::new_xavier(&mut rng, graph.num_attrs().max(1), cfg.dim);
    let sampler = NegativeSampler::new(graph, cfg.sampling);
    let hp = AdamHparams::with_lr(cfg.lr);
    let k = cfg.negatives.max(1);
    let mut order: Vec<usize> = (0..dataset.train.len()).collect();
    let mut step = 0u64;
    let dim = cfg.dim;

    // f and df/de for one (h, r, t, ŝ).
    let score_and_grad = |h: &[f32], r: &[f32], t: &[f32], s: &[f32], mu: f32, gamma: f32| {
        let mut e = vec![0.0f32; dim];
        let mut e_dot_s = 0.0;
        for i in 0..dim {
            e[i] = h[i] + r[i] - t[i];
            e_dot_s += e[i] * s[i];
        }
        let mut proj_norm = 0.0;
        let mut raw_norm = 0.0;
        let mut sign_p = vec![0.0f32; dim];
        for i in 0..dim {
            let p = e[i] - e_dot_s * s[i];
            proj_norm += p.abs();
            raw_norm += e[i].abs();
            sign_p[i] = p.signum();
        }
        let f = gamma - (mu * proj_norm + (1.0 - mu) * raw_norm);
        // d‖p‖₁/de = sign(p) − ŝ(ŝᵀ sign(p)) ; d‖e‖₁/de = sign(e)
        let sp_dot_s = ops::dot(&sign_p, s);
        let de: Vec<f32> = (0..dim)
            .map(|i| -(mu * (sign_p[i] - sp_dot_s * s[i]) + (1.0 - mu) * e[i].signum()))
            .collect();
        (f, de)
    };

    for _epoch in 0..cfg.epochs {
        for i in (1..order.len()).rev() {
            order.swap(i, rng.gen_range(0..=i));
        }
        for batch in order.chunks(cfg.batch.max(1)) {
            step += 1;
            for &i in batch {
                let triple = dataset.train[i];
                let negs = sampler.sample(&mut rng, &triple, k);
                if negs.is_empty() {
                    continue;
                }
                let inv_k = 1.0 / negs.len() as f32;
                let h = heads.row(triple.product.0).to_vec();
                let r = rels.row(triple.attr.0 as u32).to_vec();
                let t = tails.row(triple.value.0).to_vec();
                let sh = sem_heads.row(triple.product.0 as usize);
                let s_pos = composed_semantic(sh, sem_tails.row(triple.value.0 as usize));
                let (f_pos, de_pos) = score_and_grad(&h, &r, &t, &s_pos, cfg.mu, cfg.gamma);
                let mut dh = vec![0.0f32; dim];
                let mut dr = vec![0.0f32; dim];
                // dL/df⁺ = −σ(−f⁺); e = h + r − t ⇒ dL/dh = dL/df·df/de.
                let c_pos = -ops::sigmoid(-f_pos);
                let mut dt = vec![0.0f32; dim];
                for j in 0..dim {
                    let g = c_pos * de_pos[j];
                    dh[j] += g;
                    dr[j] += g;
                    dt[j] -= g;
                }
                tails.accumulate_grad(triple.value.0, &dt);
                for &neg in &negs {
                    let tn = tails.row(neg.0).to_vec();
                    let s_neg = composed_semantic(sh, sem_tails.row(neg.0 as usize));
                    let (f_neg, de_neg) = score_and_grad(&h, &r, &tn, &s_neg, cfg.mu, cfg.gamma);
                    let c_neg = inv_k * ops::sigmoid(f_neg);
                    let mut dtn = vec![0.0f32; dim];
                    for j in 0..dim {
                        let g = c_neg * de_neg[j];
                        dh[j] += g;
                        dr[j] += g;
                        dtn[j] -= g;
                    }
                    tails.accumulate_grad(neg.0, &dtn);
                }
                heads.accumulate_grad(triple.product.0, &dh);
                rels.accumulate_grad(triple.attr.0 as u32, &dr);
            }
            heads.adam_step(&hp, step);
            tails.adam_step(&hp, step);
            rels.adam_step(&hp, step);
        }
    }

    SspModel {
        heads,
        tails,
        rels,
        sem_heads,
        sem_tails,
        gamma: cfg.gamma,
        mu: cfg.mu,
        train_secs: start.elapsed().as_secs_f64(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pge_graph::LabeledTriple;

    fn dataset() -> Dataset {
        let mut g = ProductGraph::new();
        let mut train = Vec::new();
        for p in 0..40u32 {
            let flavor = if p % 2 == 0 {
                "spicy hot"
            } else {
                "sweet honey"
            };
            let title = format!("brand{p} {flavor} chips pack {p}");
            train.push(g.add_fact(&title, "flavor", flavor));
        }
        let mut test = Vec::new();
        for p in 0..8u32 {
            let (flavor, wrong) = if p % 2 == 0 {
                ("spicy hot", "sweet honey")
            } else {
                ("sweet honey", "spicy hot")
            };
            let title = format!("brand{p} {flavor} chips pack {p}");
            let pid = g.lookup_product(&title).unwrap();
            let attr = g.intern_attr("flavor");
            test.push(LabeledTriple {
                triple: Triple::new(pid, attr, g.intern_value(flavor)),
                correct: true,
            });
            test.push(LabeledTriple {
                triple: Triple::new(pid, attr, g.intern_value(wrong)),
                correct: false,
            });
        }
        Dataset::new(g, train, vec![], test)
    }

    #[test]
    fn separates_correct_from_swapped() {
        let d = dataset();
        let m = train_ssp(
            &d,
            &SspConfig {
                epochs: 15,
                sampling: SamplingMode::PerAttribute,
                ..SspConfig::tiny()
            },
        );
        let (mut good, mut bad) = (0.0, 0.0);
        for lt in &d.test {
            let f = m.score(&lt.triple);
            if lt.correct {
                good += f;
            } else {
                bad += f;
            }
        }
        assert!(good > bad, "good={good} bad={bad}");
    }

    #[test]
    fn score_is_finite_and_bounded_by_gamma() {
        let d = dataset();
        let m = train_ssp(
            &d,
            &SspConfig {
                epochs: 2,
                ..SspConfig::tiny()
            },
        );
        for lt in &d.test {
            let f = m.score(&lt.triple);
            assert!(f.is_finite());
            assert!(f <= m.gamma);
        }
    }

    #[test]
    fn name() {
        let d = dataset();
        let m = train_ssp(
            &d,
            &SspConfig {
                epochs: 1,
                ..SspConfig::tiny()
            },
        );
        assert_eq!(ErrorDetector::name(&m), "SSP");
    }
}
