//! "Union of Transformer and PGE": reciprocal-rank fusion (§4.2).
//!
//! The paper re-ranks test triples by the average of reciprocal ranks
//! from two methods: `R_avg = (1/i + 1/j)/2`, with ranks assigned by
//! each method's error ordering. A triple both methods consider
//! suspicious gets a large `R_avg` and is ranked as an error first.

use pge_core::ErrorDetector;
use pge_graph::{ProductGraph, Triple};

/// Rank-fusion ensemble of two detectors.
pub struct Union<'a> {
    pub first: &'a dyn ErrorDetector,
    pub second: &'a dyn ErrorDetector,
}

impl<'a> Union<'a> {
    pub fn new(first: &'a dyn ErrorDetector, second: &'a dyn ErrorDetector) -> Self {
        Union { first, second }
    }
}

/// 1-based error ranks (1 = least plausible) from plausibility scores.
fn error_ranks(scores: &[f32]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[a].total_cmp(&scores[b]));
    let mut rank = vec![0usize; scores.len()];
    for (r, &ix) in order.iter().enumerate() {
        rank[ix] = r + 1;
    }
    rank
}

impl ErrorDetector for Union<'_> {
    fn name(&self) -> String {
        format!("Union of {} and {}", self.first.name(), self.second.name())
    }

    /// Meaningless in isolation — rank fusion needs the whole batch;
    /// [`prefers_batch`](ErrorDetector::prefers_batch) routes batch
    /// callers to [`plausibility_all`](ErrorDetector::plausibility_all).
    /// The single-triple fallback averages the member plausibilities.
    fn plausibility(&self, graph: &ProductGraph, t: &Triple) -> f32 {
        (self.first.plausibility(graph, t) + self.second.plausibility(graph, t)) / 2.0
    }

    fn plausibility_all(&self, graph: &ProductGraph, triples: &[Triple]) -> Vec<f32> {
        let ra = error_ranks(&self.first.plausibility_all(graph, triples));
        let rb = error_ranks(&self.second.plausibility_all(graph, triples));
        // Higher R_avg ⇒ more suspicious ⇒ lower plausibility.
        ra.iter()
            .zip(&rb)
            .map(|(&i, &j)| -((1.0 / i as f32) + (1.0 / j as f32)) / 2.0)
            .collect()
    }

    fn prefers_batch(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pge_graph::{AttrId, ProductId, ValueId};

    struct ByValue(f32);

    impl ErrorDetector for ByValue {
        fn name(&self) -> String {
            format!("by-value x{}", self.0)
        }
        fn plausibility(&self, _g: &ProductGraph, t: &Triple) -> f32 {
            self.0 * t.value.0 as f32
        }
    }

    /// Scores value 0 lowest except value 3, which it hates most.
    struct Quirky;

    impl ErrorDetector for Quirky {
        fn name(&self) -> String {
            "quirky".into()
        }
        fn plausibility(&self, _g: &ProductGraph, t: &Triple) -> f32 {
            if t.value.0 == 3 {
                -100.0
            } else {
                t.value.0 as f32
            }
        }
    }

    fn triples(n: u32) -> Vec<Triple> {
        (0..n)
            .map(|i| Triple::new(ProductId(i), AttrId(0), ValueId(i)))
            .collect()
    }

    #[test]
    fn agreeing_members_preserve_order() {
        let g = ProductGraph::new();
        let a = ByValue(1.0);
        let b = ByValue(2.0);
        let u = Union::new(&a, &b);
        let ts = triples(5);
        let scores = u.plausibility_all(&g, &ts);
        // Plausibility must increase with value id (both agree).
        for w in scores.windows(2) {
            assert!(w[1] > w[0], "{scores:?}");
        }
    }

    #[test]
    fn fusion_promotes_shared_suspicions() {
        let g = ProductGraph::new();
        let a = ByValue(1.0); // thinks v0 worst
        let b = Quirky; // thinks v3 worst, v0 second-worst
        let u = Union::new(&a, &b);
        let ts = triples(5);
        let scores = u.plausibility_all(&g, &ts);
        // v0 has ranks (1, 2) → R_avg = 0.75 ; v3 has ranks (4, 1)
        // → R_avg = 0.625 ; so v0 is the least plausible overall.
        let min_ix = scores
            .iter()
            .enumerate()
            .min_by(|x, y| x.1.total_cmp(y.1))
            .unwrap()
            .0;
        assert_eq!(min_ix, 0, "{scores:?}");
    }

    #[test]
    fn prefers_batch_is_set() {
        let a = ByValue(1.0);
        let b = ByValue(1.0);
        assert!(Union::new(&a, &b).prefers_batch());
    }

    #[test]
    fn name_mentions_both() {
        let a = ByValue(1.0);
        let b = Quirky;
        assert!(Union::new(&a, &b).name().contains("quirky"));
    }
}
