//! NLP-based baselines: LSTM and Transformer triple classifiers.
//!
//! A triple is serialized as `title ⟨sep⟩ attribute ⟨sep⟩ value`
//! tokens and fed to a sequence encoder; a logistic head predicts
//! correctness. Training uses the observed triples as positives and
//! sampled value corruptions as negatives. These methods see *only
//! text* — no graph ids — which is why they transfer well to the
//! inductive setting but lag where structure dominates (FB-like data).

use pge_core::ErrorDetector;
use pge_graph::{Dataset, NegativeSampler, ProductGraph, SamplingMode, Triple};
use pge_nn::{Activation, AdamHparams, Linear, Lstm, TransformerConfig, TransformerEncoder};
use pge_tensor::ops;
use pge_text::{tokenize, Vocab};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// Which sequence architecture the classifier uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NlpArch {
    Lstm,
    Transformer,
}

impl NlpArch {
    pub fn name(self) -> &'static str {
        match self {
            NlpArch::Lstm => "LSTM",
            NlpArch::Transformer => "Transformer",
        }
    }
}

/// NLP classifier knobs.
#[derive(Clone, Debug)]
pub struct NlpConfig {
    pub arch: NlpArch,
    pub word_dim: usize,
    pub hidden: usize,
    pub max_len: usize,
    pub epochs: usize,
    pub batch: usize,
    /// Corruptions per positive.
    pub negatives: usize,
    pub lr: f32,
    pub sampling: SamplingMode,
    pub seed: u64,
}

impl Default for NlpConfig {
    fn default() -> Self {
        NlpConfig::for_arch(NlpArch::Transformer)
    }
}

impl NlpConfig {
    /// Tuned defaults per architecture (the paper grid-searches each
    /// baseline; these are the winners of our small grid — the
    /// transformer needs a gentler learning rate than the LSTM).
    pub fn for_arch(arch: NlpArch) -> Self {
        NlpConfig {
            arch,
            word_dim: 32,
            hidden: 32,
            max_len: 24,
            epochs: 10,
            batch: 32,
            negatives: 2,
            lr: match arch {
                NlpArch::Lstm => 3e-3,
                NlpArch::Transformer => 1e-3,
            },
            sampling: SamplingMode::GlobalUniform,
            seed: 31,
        }
    }

    pub fn tiny(arch: NlpArch) -> Self {
        NlpConfig {
            word_dim: 16,
            hidden: 16,
            max_len: 18,
            epochs: 6,
            ..NlpConfig::for_arch(arch)
        }
    }
}

enum SeqEncoder {
    Lstm(Box<Lstm>),
    Transformer(Box<TransformerEncoder>),
}

impl SeqEncoder {
    fn out_dim(&self) -> usize {
        match self {
            SeqEncoder::Lstm(e) => e.out_dim(),
            SeqEncoder::Transformer(e) => e.out_dim(),
        }
    }

    fn infer(&self, tokens: &[u32]) -> Vec<f32> {
        match self {
            SeqEncoder::Lstm(e) => e.infer(tokens),
            SeqEncoder::Transformer(e) => e.infer(tokens),
        }
    }

    fn adam_step(&mut self, hp: &AdamHparams, t: u64) {
        match self {
            SeqEncoder::Lstm(e) => e.adam_step(hp, t),
            SeqEncoder::Transformer(e) => e.adam_step(hp, t),
        }
    }
}

/// A trained NLP triple classifier.
pub struct NlpModel {
    /// Training-corpus vocabulary (unseen words map to `<unk>`).
    pub vocab: Vocab,
    encoder: SeqEncoder,
    head: Linear,
    arch: NlpArch,
    /// Token cache per graph title / value id.
    title_tokens: Vec<Vec<u32>>,
    value_tokens: Vec<Vec<u32>>,
    attr_tokens: Vec<Vec<u32>>,
    pub train_secs: f64,
}

impl NlpModel {
    fn sequence(&self, t: &Triple) -> Vec<u32> {
        let mut seq = self.title_tokens[t.product.0 as usize].clone();
        seq.extend(&self.attr_tokens[t.attr.0 as usize]);
        seq.extend(&self.value_tokens[t.value.0 as usize]);
        seq
    }

    /// P(correct) for a triple.
    pub fn prob_correct(&self, t: &Triple) -> f32 {
        let enc = self.encoder.infer(&self.sequence(t));
        ops::sigmoid(self.head.infer(&enc)[0])
    }
}

impl ErrorDetector for NlpModel {
    fn name(&self) -> String {
        self.arch.name().to_string()
    }

    fn plausibility(&self, _graph: &ProductGraph, t: &Triple) -> f32 {
        self.prob_correct(t)
    }
}

/// Train an NLP triple classifier.
pub fn train_nlp(dataset: &Dataset, cfg: &NlpConfig) -> NlpModel {
    let start = Instant::now();
    let graph = &dataset.graph;
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    // Vocabulary from training triples only.
    let mut vocab = Vocab::new();
    let mut seen_title = vec![false; graph.num_products()];
    let mut seen_value = vec![false; graph.num_values()];
    let mut seen_attr = vec![false; graph.num_attrs()];
    for t in &dataset.train {
        if !seen_title[t.product.0 as usize] {
            seen_title[t.product.0 as usize] = true;
            for w in tokenize(graph.title(t.product)) {
                vocab.add(&w);
            }
        }
        if !seen_attr[t.attr.0 as usize] {
            seen_attr[t.attr.0 as usize] = true;
            for w in tokenize(graph.attr_name(t.attr)) {
                vocab.add(&w);
            }
        }
        if !seen_value[t.value.0 as usize] {
            seen_value[t.value.0 as usize] = true;
            for w in tokenize(graph.value_text(t.value)) {
                vocab.add(&w);
            }
        }
    }

    let encoder = match cfg.arch {
        NlpArch::Lstm => SeqEncoder::Lstm(Box::new(Lstm::new(
            &mut rng,
            vocab.len(),
            cfg.word_dim,
            cfg.hidden,
            cfg.max_len,
        ))),
        NlpArch::Transformer => SeqEncoder::Transformer(Box::new(TransformerEncoder::new(
            &mut rng,
            TransformerConfig {
                vocab: vocab.len(),
                dim: cfg.hidden,
                heads: (cfg.hidden / 8).clamp(1, 4),
                layers: 1,
                ffn_dim: cfg.hidden * 2,
                max_len: cfg.max_len,
            },
        ))),
    };
    let head = Linear::new(&mut rng, encoder.out_dim(), 1, Activation::None);

    // Token caches.
    let title_tokens: Vec<Vec<u32>> = (0..graph.num_products())
        .map(|i| vocab.encode(&tokenize(graph.title(pge_graph::ProductId(i as u32)))))
        .collect();
    let value_tokens: Vec<Vec<u32>> = (0..graph.num_values())
        .map(|i| vocab.encode(&tokenize(graph.value_text(pge_graph::ValueId(i as u32)))))
        .collect();
    let attr_tokens: Vec<Vec<u32>> = (0..graph.num_attrs())
        .map(|i| vocab.encode(&tokenize(graph.attr_name(pge_graph::AttrId(i as u16)))))
        .collect();

    let mut model = NlpModel {
        vocab,
        encoder,
        head,
        arch: cfg.arch,
        title_tokens,
        value_tokens,
        attr_tokens,
        train_secs: 0.0,
    };

    let sampler = NegativeSampler::new(graph, cfg.sampling);
    let hp = AdamHparams::with_lr(cfg.lr);
    let mut order: Vec<usize> = (0..dataset.train.len()).collect();
    let mut step = 0u64;
    for _epoch in 0..cfg.epochs {
        for i in (1..order.len()).rev() {
            order.swap(i, rng.gen_range(0..=i));
        }
        for batch in order.chunks(cfg.batch.max(1)) {
            step += 1;
            for &i in batch {
                let pos = dataset.train[i];
                train_example(&mut model, &pos, 1.0);
                for _ in 0..cfg.negatives {
                    if let Some(v) = sampler.sample_one(&mut rng, &pos) {
                        let neg = Triple::new(pos.product, pos.attr, v);
                        train_example(&mut model, &neg, 0.0);
                    }
                }
            }
            model.encoder_step(&hp, step);
        }
    }
    model.train_secs = start.elapsed().as_secs_f64();
    model
}

impl NlpModel {
    fn encoder_step(&mut self, hp: &AdamHparams, step: u64) {
        self.encoder.adam_step(hp, step);
        self.head.adam_step(hp, step);
    }
}

/// One BCE step on a (triple, label) example; accumulates grads.
fn train_example(model: &mut NlpModel, t: &Triple, label: f32) {
    let seq = model.sequence(t);
    match &mut model.encoder {
        SeqEncoder::Lstm(enc) => {
            let (h, cache) = enc.forward(&seq);
            let (logit, head_cache) = model.head.forward(&h);
            let p = ops::sigmoid(logit[0]);
            let dlogit = p - label; // dBCE/dlogit
            let dh = model.head.backward(&head_cache, &[dlogit]);
            enc.backward(&cache, &dh);
        }
        SeqEncoder::Transformer(enc) => {
            let (h, cache) = enc.forward(&seq);
            let (logit, head_cache) = model.head.forward(&h);
            let p = ops::sigmoid(logit[0]);
            let dlogit = p - label;
            let dh = model.head.backward(&head_cache, &[dlogit]);
            enc.backward(&cache, &dh);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pge_graph::LabeledTriple;

    /// Text-separable dataset: titles contain the flavor word, values
    /// either match ("spicy" on a spicy title) or not.
    fn texty_dataset() -> Dataset {
        let mut g = ProductGraph::new();
        let mut train = Vec::new();
        for i in 0..40 {
            let flavor = if i % 2 == 0 { "spicy" } else { "sweet" };
            let title = format!("brand{i} {flavor} snack chips number {i}");
            train.push(g.add_fact(&title, "flavor", flavor));
        }
        let mut test = Vec::new();
        for i in 0..10 {
            let (flavor, wrong) = if i % 2 == 0 {
                ("spicy", "sweet")
            } else {
                ("sweet", "spicy")
            };
            let title = format!("newbrand{i} {flavor} snack chips fresh");
            let pid = g.intern_product(&title);
            let attr = g.intern_attr("flavor");
            test.push(LabeledTriple {
                triple: Triple::new(pid, attr, g.intern_value(flavor)),
                correct: true,
            });
            test.push(LabeledTriple {
                triple: Triple::new(pid, attr, g.intern_value(wrong)),
                correct: false,
            });
        }
        Dataset::new(g, train, vec![], test)
    }

    #[test]
    fn lstm_learns_text_consistency() {
        let d = texty_dataset();
        // The label here depends on the *interaction* between the
        // flavor word in the title and the value token (each value is
        // correct for exactly half the titles), which the LSTM only
        // picks up with a longer budget and hotter learning rate than
        // the plain tiny() config.
        let m = train_nlp(
            &d,
            &NlpConfig {
                epochs: 48,
                lr: 1e-2,
                ..NlpConfig::tiny(NlpArch::Lstm)
            },
        );
        let (mut good, mut bad) = (0.0, 0.0);
        for lt in &d.test {
            let p = m.prob_correct(&lt.triple);
            if lt.correct {
                good += p;
            } else {
                bad += p;
            }
        }
        assert!(good > bad, "good={good} bad={bad}");
    }

    #[test]
    fn transformer_learns_text_consistency() {
        let d = texty_dataset();
        let m = train_nlp(
            &d,
            &NlpConfig {
                epochs: 12,
                ..NlpConfig::tiny(NlpArch::Transformer)
            },
        );
        let (mut good, mut bad) = (0.0, 0.0);
        for lt in &d.test {
            let p = m.prob_correct(&lt.triple);
            if lt.correct {
                good += p;
            } else {
                bad += p;
            }
        }
        assert!(good > bad, "good={good} bad={bad}");
    }

    #[test]
    fn probabilities_in_unit_interval() {
        let d = texty_dataset();
        let m = train_nlp(
            &d,
            &NlpConfig {
                epochs: 2,
                ..NlpConfig::tiny(NlpArch::Lstm)
            },
        );
        for lt in &d.test {
            let p = m.prob_correct(&lt.triple);
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn names_match_paper_labels() {
        assert_eq!(NlpArch::Lstm.name(), "LSTM");
        assert_eq!(NlpArch::Transformer.name(), "Transformer");
    }

    #[test]
    fn vocab_is_training_only() {
        let d = texty_dataset();
        let m = train_nlp(
            &d,
            &NlpConfig {
                epochs: 1,
                ..NlpConfig::tiny(NlpArch::Lstm)
            },
        );
        assert!(m.vocab.get("brand0").is_some());
        // Test-only words are absent.
        assert!(m.vocab.get("newbrand0").is_none());
    }
}
