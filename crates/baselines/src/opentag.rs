//! OpenTag-lite attribute extraction and the RotatE+ pipeline.
//!
//! The paper's RotatE+ baseline "first applies OpenTag … to extract
//! all relevant attributes from product title and description to
//! enrich the PG, then applies RotatE on the enriched KG". OpenTag
//! proper is a BiLSTM-CRF sequence tagger; what RotatE+ actually
//! consumes is its *output* — (product, attribute, value) candidates
//! mined from titles. We reproduce that output with a high-precision
//! longest-match lexicon tagger over per-attribute value vocabularies
//! (see DESIGN.md §2), then run the id-based RotatE baseline on the
//! enriched training set.

use crate::kge::{KgeConfig, KgeModel};
use pge_core::ScoreKind;
use pge_graph::{AttrId, Dataset, ProductGraph, ProductId, Triple, ValueId};
use pge_tensor::FxHashSet;
use pge_text::tokenize;

/// Per-attribute value lexicon: tokenized value strings observed in
/// training, longest first.
pub struct OpenTagLexicon {
    /// `per_attr[a]` = (value tokens, value id), sorted by descending
    /// token count so the longest match wins.
    per_attr: Vec<Vec<(Vec<String>, ValueId)>>,
}

impl OpenTagLexicon {
    /// Build the lexicon from the values observed in `train`.
    pub fn build(graph: &ProductGraph, train: &[Triple]) -> Self {
        let mut seen: Vec<FxHashSet<ValueId>> = vec![FxHashSet::default(); graph.num_attrs()];
        let mut per_attr: Vec<Vec<(Vec<String>, ValueId)>> = vec![Vec::new(); graph.num_attrs()];
        for t in train {
            if seen[t.attr.0 as usize].insert(t.value) {
                let toks = tokenize(graph.value_text(t.value));
                if !toks.is_empty() {
                    per_attr[t.attr.0 as usize].push((toks, t.value));
                }
            }
        }
        for lex in &mut per_attr {
            lex.sort_by_key(|(toks, _)| std::cmp::Reverse(toks.len()));
        }
        OpenTagLexicon { per_attr }
    }

    /// Number of lexicon entries for an attribute.
    pub fn entries(&self, a: AttrId) -> usize {
        self.per_attr[a.0 as usize].len()
    }
}

/// Whether `needle` occurs as a contiguous subsequence of `haystack`.
fn contains_seq(haystack: &[String], needle: &[String]) -> bool {
    if needle.is_empty() || needle.len() > haystack.len() {
        return false;
    }
    haystack
        .windows(needle.len())
        .any(|w| w.iter().zip(needle).all(|(a, b)| a == b))
}

/// Extract (product, attribute, value) candidates from every product
/// title: per attribute, the longest lexicon value whose tokens occur
/// contiguously in the title. Single-token values are skipped for
/// precision (they over-trigger — "sweet" matches any marketing copy).
pub fn extract_attributes(graph: &ProductGraph, lexicon: &OpenTagLexicon) -> Vec<Triple> {
    let mut out = Vec::new();
    for p in 0..graph.num_products() {
        let pid = ProductId(p as u32);
        let title_toks = tokenize(graph.title(pid));
        for (a, lex) in lexicon.per_attr.iter().enumerate() {
            for (toks, vid) in lex {
                if toks.len() < 2 {
                    break; // sorted by length: the rest are shorter
                }
                if contains_seq(&title_toks, toks) {
                    out.push(Triple::new(pid, AttrId(a as u16), *vid));
                    break; // longest match only
                }
            }
        }
    }
    out
}

/// RotatE+: enrich the training set with extracted triples, then train
/// the id-based RotatE baseline on the enriched graph.
pub fn train_rotate_plus(dataset: &Dataset, cfg: &KgeConfig) -> KgeModel {
    let lexicon = OpenTagLexicon::build(&dataset.graph, &dataset.train);
    let extracted = extract_attributes(&dataset.graph, &lexicon);
    let mut enriched = dataset.clone();
    let mut seen: FxHashSet<(u32, u16, u32)> = dataset
        .train
        .iter()
        .map(|t| (t.product.0, t.attr.0, t.value.0))
        .collect();
    // Never inject a labeled evaluation triple back into training.
    let held_out: FxHashSet<(u32, u16, u32)> = dataset
        .valid
        .iter()
        .chain(&dataset.test)
        .map(|lt| (lt.triple.product.0, lt.triple.attr.0, lt.triple.value.0))
        .collect();
    for t in extracted {
        let key = (t.product.0, t.attr.0, t.value.0);
        if !held_out.contains(&key) && seen.insert(key) {
            enriched.train.push(t);
            enriched.train_clean.push(true);
        }
    }
    let cfg = KgeConfig {
        score: ScoreKind::RotatE,
        ..cfg.clone()
    };
    let mut m = crate::kge::train_kge(&enriched, &cfg);
    m.name = "RotatE+".into();
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use pge_graph::Dataset;

    fn graph_and_train() -> (ProductGraph, Vec<Triple>) {
        let mut g = ProductGraph::new();
        // Training products establish the lexicon.
        let train = vec![
            g.add_fact("alpha spicy queso tortilla chips", "flavor", "spicy queso"),
            g.add_fact("beta honey roasted peanuts", "flavor", "honey roasted"),
        ];
        // This product *mentions* spicy queso in its title but has no
        // flavor triple: extraction should add one.
        g.intern_product("gamma spicy queso corn puffs");
        (g, train)
    }

    #[test]
    fn lexicon_collects_training_values() {
        let (g, train) = graph_and_train();
        let lex = OpenTagLexicon::build(&g, &train);
        let flavor = g.lookup_attr("flavor").unwrap();
        assert_eq!(lex.entries(flavor), 2);
    }

    #[test]
    fn extraction_finds_mentions() {
        let (g, train) = graph_and_train();
        let lex = OpenTagLexicon::build(&g, &train);
        let extracted = extract_attributes(&g, &lex);
        let gamma = g.lookup_product("gamma spicy queso corn puffs").unwrap();
        let queso = g.lookup_value("spicy queso").unwrap();
        assert!(
            extracted
                .iter()
                .any(|t| t.product == gamma && t.value == queso),
            "missing extraction: {extracted:?}"
        );
        // beta must NOT get "spicy queso".
        let beta = g.lookup_product("beta honey roasted peanuts").unwrap();
        assert!(!extracted
            .iter()
            .any(|t| t.product == beta && t.value == queso));
    }

    #[test]
    fn single_token_values_skipped() {
        let mut g = ProductGraph::new();
        let train = vec![g.add_fact("zed sweet drink", "flavor", "sweet")];
        let lex = OpenTagLexicon::build(&g, &train);
        let extracted = extract_attributes(&g, &lex);
        assert!(extracted.is_empty(), "{extracted:?}");
    }

    #[test]
    fn rotate_plus_trains_on_enriched_graph() {
        let (mut g, mut train) = graph_and_train();
        // Add enough structure to train on.
        for i in 0..20 {
            train.push(g.add_fact(
                &format!("bulk{i} spicy queso snack line"),
                "flavor",
                "spicy queso",
            ));
        }
        let d = Dataset::new(g, train, vec![], vec![]);
        let m = train_rotate_plus(
            &d,
            &KgeConfig {
                epochs: 2,
                ..KgeConfig::tiny()
            },
        );
        assert_eq!(pge_core::ErrorDetector::name(&m), "RotatE+");
    }
}
