//! DKRL (Xie et al., 2016): description-embodied knowledge
//! representation learning — the paper's representative "text and KG
//! joint embedding" baseline.
//!
//! DKRL keeps *two* representations per entity: a structural id
//! embedding and a CNN encoding of its description. Crucially — and
//! this is the weakness the PGE paper calls out — the two are trained
//! by **separate energy functions** (`E_S` on the structural vectors,
//! `E_D` on the description vectors, sharing only the relation
//! embedding) and combined at detection time by a **linear
//! combination** `λ·f_S + (1−λ)·f_D`, instead of learning one unified
//! representation.

use pge_core::corpus::build_corpus;
use pge_core::{ErrorDetector, ScoreKind, Scorer};
use pge_graph::{Dataset, NegativeSampler, ProductGraph, SamplingMode, Triple};
use pge_nn::{AdamHparams, CnnConfig, Embedding, TextCnnEncoder};
use pge_tensor::ops;
use pge_text::{tokenize, Vocab};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// DKRL training knobs.
#[derive(Clone, Debug)]
pub struct DkrlConfig {
    pub dim: usize,
    pub word_dim: usize,
    pub gamma: f32,
    pub epochs: usize,
    pub batch: usize,
    pub negatives: usize,
    pub lr: f32,
    /// Detection-time mixing weight of the structural score.
    pub lambda: f32,
    pub max_len: usize,
    pub sampling: SamplingMode,
    pub seed: u64,
}

impl Default for DkrlConfig {
    fn default() -> Self {
        DkrlConfig {
            dim: 32,
            word_dim: 32,
            gamma: 6.0,
            epochs: 12,
            batch: 128,
            negatives: 4,
            lr: 3e-3,
            lambda: 0.5,
            max_len: 20,
            sampling: SamplingMode::GlobalUniform,
            seed: 37,
        }
    }
}

impl DkrlConfig {
    pub fn tiny() -> Self {
        DkrlConfig {
            dim: 16,
            word_dim: 16,
            epochs: 6,
            max_len: 14,
            ..Default::default()
        }
    }
}

/// A trained DKRL model.
pub struct DkrlModel {
    /// Training-corpus vocabulary (unseen words map to `<unk>`).
    pub vocab: Vocab,
    heads_s: Embedding,
    tails_s: Embedding,
    rels: Embedding,
    encoder: TextCnnEncoder,
    scorer: Scorer,
    lambda: f32,
    title_tokens: Vec<Vec<u32>>,
    value_tokens: Vec<Vec<u32>>,
    pub train_secs: f64,
}

impl DkrlModel {
    /// Structural energy score.
    pub fn score_structural(&self, t: &Triple) -> f32 {
        self.scorer.score(
            self.heads_s.row(t.product.0),
            self.rels.row(t.attr.0 as u32),
            self.tails_s.row(t.value.0),
        )
    }

    /// Description energy score.
    pub fn score_description(&self, t: &Triple) -> f32 {
        let h = self.encoder.infer(&self.title_tokens[t.product.0 as usize]);
        let v = self.encoder.infer(&self.value_tokens[t.value.0 as usize]);
        self.scorer.score(&h, self.rels.row(t.attr.0 as u32), &v)
    }

    /// Linear combination used for detection.
    pub fn score(&self, t: &Triple) -> f32 {
        self.lambda * self.score_structural(t) + (1.0 - self.lambda) * self.score_description(t)
    }
}

impl ErrorDetector for DkrlModel {
    fn name(&self) -> String {
        "DKRL".into()
    }

    fn plausibility(&self, _graph: &ProductGraph, t: &Triple) -> f32 {
        self.score(t)
    }
}

/// Train DKRL: structural TransE + description TransE as separate
/// losses over shared relation vectors.
pub fn train_dkrl(dataset: &Dataset, cfg: &DkrlConfig) -> DkrlModel {
    let start = Instant::now();
    let graph = &dataset.graph;
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let scorer = Scorer::new(ScoreKind::TransE, cfg.gamma);

    let corpus = build_corpus(graph, &dataset.train);
    let vocab = corpus.vocab;
    let words = Embedding::new(&mut rng, vocab.len(), cfg.word_dim);
    let mut encoder = TextCnnEncoder::with_embeddings(
        &mut rng,
        CnnConfig {
            vocab: vocab.len(),
            word_dim: cfg.word_dim,
            widths: vec![1, 2],
            filters_per_width: cfg.dim / 2,
            out_dim: cfg.dim,
            max_len: cfg.max_len,
        },
        words,
    );
    let mut heads_s = Embedding::new_xavier(&mut rng, graph.num_products().max(1), cfg.dim);
    let mut tails_s = Embedding::new_xavier(&mut rng, graph.num_values().max(1), cfg.dim);
    let mut rels =
        Embedding::new_xavier(&mut rng, graph.num_attrs().max(1), scorer.rel_dim(cfg.dim));

    let title_tokens: Vec<Vec<u32>> = (0..graph.num_products())
        .map(|i| vocab.encode(&tokenize(graph.title(pge_graph::ProductId(i as u32)))))
        .collect();
    let value_tokens: Vec<Vec<u32>> = (0..graph.num_values())
        .map(|i| vocab.encode(&tokenize(graph.value_text(pge_graph::ValueId(i as u32)))))
        .collect();

    let sampler = NegativeSampler::new(graph, cfg.sampling);
    let hp = AdamHparams::with_lr(cfg.lr);
    let k = cfg.negatives.max(1);
    let mut order: Vec<usize> = (0..dataset.train.len()).collect();
    let mut step = 0u64;
    let dim = cfg.dim;
    for _epoch in 0..cfg.epochs {
        for i in (1..order.len()).rev() {
            order.swap(i, rng.gen_range(0..=i));
        }
        for batch in order.chunks(cfg.batch.max(1)) {
            step += 1;
            for &i in batch {
                let triple = dataset.train[i];
                let negs = sampler.sample(&mut rng, &triple, k);
                if negs.is_empty() {
                    continue;
                }
                let inv_k = 1.0 / negs.len() as f32;
                let r = rels.row(triple.attr.0 as u32).to_vec();
                let mut dr = vec![0.0f32; r.len()];

                // --- Structural energy E_S (own loss). ---
                {
                    let h = heads_s.row(triple.product.0).to_vec();
                    let t = tails_s.row(triple.value.0).to_vec();
                    let mut dh = vec![0.0f32; dim];
                    let mut dt = vec![0.0f32; dim];
                    let f_pos = scorer.score(&h, &r, &t);
                    scorer.backward(&h, &r, &t, -ops::sigmoid(-f_pos), &mut dh, &mut dr, &mut dt);
                    tails_s.accumulate_grad(triple.value.0, &dt);
                    for &neg in &negs {
                        let tn = tails_s.row(neg.0).to_vec();
                        let f_neg = scorer.score(&h, &r, &tn);
                        let mut dtn = vec![0.0f32; dim];
                        scorer.backward(
                            &h,
                            &r,
                            &tn,
                            inv_k * ops::sigmoid(f_neg),
                            &mut dh,
                            &mut dr,
                            &mut dtn,
                        );
                        tails_s.accumulate_grad(neg.0, &dtn);
                    }
                    heads_s.accumulate_grad(triple.product.0, &dh);
                }

                // --- Description energy E_D (separate loss). ---
                {
                    let (h, cache_h) = encoder.forward(&title_tokens[triple.product.0 as usize]);
                    let (t, cache_t) = encoder.forward(&value_tokens[triple.value.0 as usize]);
                    let mut dh = vec![0.0f32; dim];
                    let mut dt = vec![0.0f32; dim];
                    let f_pos = scorer.score(&h, &r, &t);
                    scorer.backward(&h, &r, &t, -ops::sigmoid(-f_pos), &mut dh, &mut dr, &mut dt);
                    encoder.backward(&cache_t, &dt);
                    for &neg in &negs {
                        let (tn, cache_n) = encoder.forward(&value_tokens[neg.0 as usize]);
                        let f_neg = scorer.score(&h, &r, &tn);
                        let mut dtn = vec![0.0f32; dim];
                        scorer.backward(
                            &h,
                            &r,
                            &tn,
                            inv_k * ops::sigmoid(f_neg),
                            &mut dh,
                            &mut dr,
                            &mut dtn,
                        );
                        encoder.backward(&cache_n, &dtn);
                    }
                    encoder.backward(&cache_h, &dh);
                }

                rels.accumulate_grad(triple.attr.0 as u32, &dr);
            }
            heads_s.adam_step(&hp, step);
            tails_s.adam_step(&hp, step);
            rels.adam_step(&hp, step);
            encoder.adam_step(&hp, step);
        }
    }

    DkrlModel {
        vocab,
        heads_s,
        tails_s,
        rels,
        encoder,
        scorer,
        lambda: cfg.lambda,
        title_tokens,
        value_tokens,
        train_secs: start.elapsed().as_secs_f64(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pge_graph::LabeledTriple;

    fn texty_dataset() -> Dataset {
        let mut g = ProductGraph::new();
        let mut train = Vec::new();
        for i in 0..40 {
            let flavor = if i % 2 == 0 { "spicy" } else { "sweet" };
            let title = format!("brand{i} {flavor} snack chips item {i}");
            train.push(g.add_fact(&title, "flavor", flavor));
        }
        let mut test = Vec::new();
        for i in 0..8 {
            let (flavor, wrong) = if i % 2 == 0 {
                ("spicy", "sweet")
            } else {
                ("sweet", "spicy")
            };
            let title = format!("brand{i} {flavor} snack chips item {i}");
            let pid = g.lookup_product(&title).unwrap();
            let attr = g.intern_attr("flavor");
            test.push(LabeledTriple {
                triple: Triple::new(pid, attr, g.intern_value(flavor)),
                correct: true,
            });
            test.push(LabeledTriple {
                triple: Triple::new(pid, attr, g.intern_value(wrong)),
                correct: false,
            });
        }
        Dataset::new(g, train, vec![], test)
    }

    #[test]
    fn separates_correct_from_swapped() {
        let d = texty_dataset();
        let cfg = DkrlConfig {
            epochs: 12,
            sampling: SamplingMode::PerAttribute,
            ..DkrlConfig::tiny()
        };
        let m = train_dkrl(&d, &cfg);
        let (mut good, mut bad) = (0.0, 0.0);
        for lt in &d.test {
            let f = m.score(&lt.triple);
            if lt.correct {
                good += f;
            } else {
                bad += f;
            }
        }
        assert!(good > bad, "good={good} bad={bad}");
    }

    #[test]
    fn lambda_mixes_the_two_energies() {
        let d = texty_dataset();
        let mut m = train_dkrl(
            &d,
            &DkrlConfig {
                epochs: 2,
                ..DkrlConfig::tiny()
            },
        );
        let t = d.test[0].triple;
        m.lambda = 1.0;
        let s_only = m.score(&t);
        assert!((s_only - m.score_structural(&t)).abs() < 1e-6);
        m.lambda = 0.0;
        let d_only = m.score(&t);
        assert!((d_only - m.score_description(&t)).abs() < 1e-6);
    }

    #[test]
    fn vocab_from_training_text() {
        let d = texty_dataset();
        let m = train_dkrl(
            &d,
            &DkrlConfig {
                epochs: 1,
                ..DkrlConfig::tiny()
            },
        );
        assert!(m.vocab.get("spicy").is_some());
        assert_eq!(m.name(), "DKRL");
    }
}
