//! CKRL (Xie et al., 2018): confidence-aware *structural* KG
//! embedding — the paper's "noise-aware KG embedding" baseline.
//!
//! Original CKRL combines local triple confidence (LT) with prior/
//! adaptive path confidences (PP/AP). In a bipartite product graph the
//! informative paths are 2-hop value co-occurrences, whose sufficient
//! statistic is the attribute–value support count; we therefore
//! implement LT exactly (margin-driven moving update on the current
//! triple quality) and replace PP/AP with a frequency prior
//! `count(a,v) / max_v count(a,v)` (see DESIGN.md §5). Unlike PGE,
//! CKRL has no access to text, which is why its confidences are
//! "easily affected by model bias" (the paper's critique).

use crate::kge::KgeModel;
use pge_core::{ErrorDetector, ScoreKind, Scorer};
use pge_graph::{Dataset, NegativeSampler, ProductGraph, SamplingMode, Triple};
use pge_nn::{AdamHparams, Embedding};
use pge_tensor::{ops, FxHashMap};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// Sharpness of the LT-confidence target `σ(s · margin)` — margins on
/// rescaled embeddings are small, so a flat sigmoid would leave all
/// confidences indistinguishable near 0.5.
const MARGIN_SHARPNESS: f32 = 3.0;

/// CKRL training knobs.
#[derive(Clone, Debug)]
pub struct CkrlConfig {
    pub dim: usize,
    pub gamma: f32,
    pub epochs: usize,
    pub batch: usize,
    pub negatives: usize,
    pub lr: f32,
    /// LT confidence decay/learning rate.
    pub lt_lr: f32,
    /// Mixing weight of LT vs the frequency prior.
    pub lt_weight: f32,
    pub sampling: SamplingMode,
    pub seed: u64,
}

impl Default for CkrlConfig {
    fn default() -> Self {
        CkrlConfig {
            dim: 32,
            gamma: 6.0,
            epochs: 25,
            batch: 256,
            negatives: 4,
            lr: 1e-2,
            lt_lr: 0.15,
            lt_weight: 0.7,
            sampling: SamplingMode::GlobalUniform,
            seed: 23,
        }
    }
}

impl CkrlConfig {
    pub fn tiny() -> Self {
        CkrlConfig {
            dim: 16,
            epochs: 10,
            ..Default::default()
        }
    }
}

/// A trained CKRL model: the structural embeddings plus the final
/// triple confidences.
pub struct CkrlModel {
    pub kge: KgeModel,
    /// Final confidence per training triple.
    pub confidence: Vec<f32>,
    pub train_secs: f64,
}

impl ErrorDetector for CkrlModel {
    fn name(&self) -> String {
        "CKRL".into()
    }

    fn plausibility(&self, _graph: &ProductGraph, t: &Triple) -> f32 {
        self.kge.score(t)
    }
}

/// Train CKRL: TransE embeddings with per-triple confidence weighting
/// updated during training.
pub fn train_ckrl(dataset: &Dataset, cfg: &CkrlConfig) -> CkrlModel {
    let start = Instant::now();
    let graph = &dataset.graph;
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let scorer = Scorer::new(ScoreKind::TransE, cfg.gamma);
    let mut heads = Embedding::new_xavier(&mut rng, graph.num_products().max(1), cfg.dim);
    let mut tails = Embedding::new_xavier(&mut rng, graph.num_values().max(1), cfg.dim);
    let mut rels =
        Embedding::new_xavier(&mut rng, graph.num_attrs().max(1), scorer.rel_dim(cfg.dim));
    let sampler = NegativeSampler::new(graph, cfg.sampling);
    let hp = AdamHparams::with_lr(cfg.lr);

    // Frequency prior (PP/AP stand-in).
    let counts = graph.attr_value_counts();
    let mut max_per_attr: FxHashMap<u16, u32> = FxHashMap::default();
    for (&(a, _), &c) in &counts {
        let e = max_per_attr.entry(a.0).or_insert(0);
        *e = (*e).max(c);
    }
    let prior = |t: &Triple| -> f32 {
        let c = counts.get(&(t.attr, t.value)).copied().unwrap_or(0) as f32;
        let m = max_per_attr.get(&t.attr.0).copied().unwrap_or(1) as f32;
        (c / m.max(1.0)).sqrt() // sqrt softens the skew
    };

    // LT confidence, initialized optimistic.
    let mut lt = vec![1.0f32; dataset.train.len()];

    let k = cfg.negatives.max(1);
    let mut order: Vec<usize> = (0..dataset.train.len()).collect();
    let mut step = 0u64;
    let mut dh = vec![0.0f32; cfg.dim];
    let mut dr = vec![0.0f32; cfg.dim];
    let mut dt = vec![0.0f32; cfg.dim];
    for epoch in 0..cfg.epochs {
        for i in (1..order.len()).rev() {
            order.swap(i, rng.gen_range(0..=i));
        }
        // Confidence kicks in once embeddings carry signal.
        let conf_active = epoch >= 2;
        for batch in order.chunks(cfg.batch.max(1)) {
            step += 1;
            for &i in batch {
                let triple = dataset.train[i];
                let w = if conf_active {
                    cfg.lt_weight * lt[i] + (1.0 - cfg.lt_weight) * prior(&triple)
                } else {
                    1.0
                };
                let negs = sampler.sample(&mut rng, &triple, k);
                if negs.is_empty() {
                    continue;
                }
                let h = heads.row(triple.product.0).to_vec();
                let r = rels.row(triple.attr.0 as u32).to_vec();
                let t = tails.row(triple.value.0).to_vec();
                let f_pos = scorer.score(&h, &r, &t);
                dh.iter_mut().for_each(|x| *x = 0.0);
                dr.iter_mut().for_each(|x| *x = 0.0);
                dt.iter_mut().for_each(|x| *x = 0.0);
                if w > 0.0 {
                    scorer.backward(
                        &h,
                        &r,
                        &t,
                        -w * ops::sigmoid(-f_pos),
                        &mut dh,
                        &mut dr,
                        &mut dt,
                    );
                    tails.accumulate_grad(triple.value.0, &dt);
                }
                let mut margin_sum = 0.0f32;
                let inv_k = 1.0 / negs.len() as f32;
                for &neg in &negs {
                    let tn = tails.row(neg.0).to_vec();
                    let f_neg = scorer.score(&h, &r, &tn);
                    margin_sum += f_pos - f_neg;
                    if w > 0.0 {
                        dt.iter_mut().for_each(|x| *x = 0.0);
                        scorer.backward(
                            &h,
                            &r,
                            &tn,
                            w * inv_k * ops::sigmoid(f_neg),
                            &mut dh,
                            &mut dr,
                            &mut dt,
                        );
                        tails.accumulate_grad(neg.0, &dt);
                    }
                }
                if w > 0.0 {
                    heads.accumulate_grad(triple.product.0, &dh);
                    rels.accumulate_grad(triple.attr.0 as u32, &dr);
                }
                if conf_active {
                    // LT update (CKRL Eq. 5-style): positive margins
                    // over corruptions raise confidence, negative
                    // margins lower it. The sharpness factor keeps the
                    // sigmoid from saturating flat around margin ≈ 0.
                    let mean_margin = margin_sum * inv_k;
                    let target = ops::sigmoid(MARGIN_SHARPNESS * mean_margin);
                    lt[i] = (lt[i] + cfg.lt_lr * (target - lt[i])).clamp(0.0, 1.0);
                }
            }
            heads.adam_step(&hp, step);
            tails.adam_step(&hp, step);
            rels.adam_step(&hp, step);
        }
    }

    let confidence: Vec<f32> = dataset
        .train
        .iter()
        .enumerate()
        .map(|(i, t)| cfg.lt_weight * lt[i] + (1.0 - cfg.lt_weight) * prior(t))
        .collect();
    let train_secs = start.elapsed().as_secs_f64();
    CkrlModel {
        kge: KgeModel {
            heads,
            tails,
            rels,
            scorer,
            train_secs,
            name: "CKRL".into(),
        },
        confidence,
        train_secs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pge_graph::inject_noise;

    /// Cluster-consistent dataset: each product belongs to a latent
    /// cluster that determines the value of all three attributes, so
    /// a corrupted value genuinely conflicts with the product's other
    /// (mostly clean) triples.
    fn structured_dataset() -> Dataset {
        let mut g = ProductGraph::new();
        let mut train = Vec::new();
        for p in 0..60u32 {
            let c = p % 4;
            for attr in ["r1", "r2", "r3"] {
                train.push(g.add_fact(&format!("p{p}"), attr, &format!("{attr}-v{c}")));
            }
        }
        Dataset::new(g, train, vec![], vec![])
    }

    #[test]
    fn confidence_lower_for_injected_noise() {
        let mut d = structured_dataset();
        let mut rng = StdRng::seed_from_u64(3);
        let (noisy, clean) = inject_noise(&d.graph, &d.train, 0.15, &mut rng);
        d.train = noisy;
        d.train_clean = clean;
        let m = train_ckrl(
            &d,
            &CkrlConfig {
                epochs: 30,
                ..CkrlConfig::tiny()
            },
        );
        let mean = |sel: bool| {
            let xs: Vec<f32> = d
                .train_clean
                .iter()
                .enumerate()
                .filter(|(_, &c)| c == sel)
                .map(|(i, _)| m.confidence[i])
                .collect();
            xs.iter().sum::<f32>() / xs.len() as f32
        };
        assert!(
            mean(true) > mean(false),
            "clean {} vs noisy {}",
            mean(true),
            mean(false)
        );
    }

    #[test]
    fn deterministic() {
        let d = structured_dataset();
        let a = train_ckrl(&d, &CkrlConfig::tiny());
        let b = train_ckrl(&d, &CkrlConfig::tiny());
        assert_eq!(a.confidence, b.confidence);
    }

    #[test]
    fn detector_name() {
        let d = structured_dataset();
        let m = train_ckrl(
            &d,
            &CkrlConfig {
                epochs: 1,
                ..CkrlConfig::tiny()
            },
        );
        assert_eq!(m.name(), "CKRL");
    }
}
