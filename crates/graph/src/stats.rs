//! Structural statistics of a product graph.
//!
//! Used to verify that generated datasets live in the regime the
//! paper's arguments assume (value sparsity for C1, skewed degree
//! distributions, attribute fan-out), and exported through `repro
//! table2`-adjacent tooling for dataset audits.

use crate::store::ProductGraph;

/// Degree/sparsity summary of one graph.
#[derive(Clone, Debug, PartialEq)]
pub struct GraphStats {
    /// Triples per product: (min, mean, max).
    pub product_degree: (usize, f64, usize),
    /// Triples per value: (min, mean, max).
    pub value_degree: (usize, f64, usize),
    /// Distinct values per attribute.
    pub values_per_attr: Vec<usize>,
    /// Fraction of values observed exactly once — the long tail that
    /// starves id-based embeddings (challenge C1 of the paper).
    pub singleton_value_fraction: f64,
}

/// Compute [`GraphStats`] for a graph.
pub fn graph_stats(g: &ProductGraph) -> GraphStats {
    let by_product = g.triples_by_product();
    let by_value = g.triples_by_value();

    let degree_summary = |deg: &[Vec<usize>]| -> (usize, f64, usize) {
        if deg.is_empty() {
            return (0, 0.0, 0);
        }
        let mut min = usize::MAX;
        let mut max = 0;
        let mut sum = 0usize;
        for d in deg {
            min = min.min(d.len());
            max = max.max(d.len());
            sum += d.len();
        }
        (min, sum as f64 / deg.len() as f64, max)
    };

    let singleton = if by_value.is_empty() {
        0.0
    } else {
        by_value.iter().filter(|v| v.len() == 1).count() as f64 / by_value.len() as f64
    };

    GraphStats {
        product_degree: degree_summary(&by_product),
        value_degree: degree_summary(&by_value),
        values_per_attr: g.values_by_attr().iter().map(Vec::len).collect(),
        singleton_value_fraction: singleton,
    }
}

impl GraphStats {
    /// Render a compact human-readable block.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "product degree: min {} / mean {:.1} / max {}\n",
            self.product_degree.0, self.product_degree.1, self.product_degree.2
        ));
        out.push_str(&format!(
            "value degree:   min {} / mean {:.1} / max {}\n",
            self.value_degree.0, self.value_degree.1, self.value_degree.2
        ));
        out.push_str(&format!(
            "singleton values: {:.1}%\n",
            self.singleton_value_fraction * 100.0
        ));
        out.push_str(&format!(
            "values per attribute: {:?}\n",
            self.values_per_attr
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ProductGraph {
        let mut g = ProductGraph::new();
        g.add_fact("p0", "flavor", "spicy");
        g.add_fact("p0", "ingredient", "pepper");
        g.add_fact("p1", "flavor", "spicy");
        g.add_fact("p2", "flavor", "rare one");
        g
    }

    #[test]
    fn degrees_and_singletons() {
        let s = graph_stats(&sample());
        assert_eq!(s.product_degree, (1, 4.0 / 3.0, 2));
        // values: spicy(2), pepper(1), rare one(1)
        assert_eq!(s.value_degree, (1, 4.0 / 3.0, 2));
        assert!((s.singleton_value_fraction - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(s.values_per_attr, vec![2, 1]);
    }

    #[test]
    fn empty_graph() {
        let s = graph_stats(&ProductGraph::new());
        assert_eq!(s.product_degree, (0, 0.0, 0));
        assert_eq!(s.singleton_value_fraction, 0.0);
        assert!(s.values_per_attr.is_empty());
    }

    #[test]
    fn render_mentions_all_sections() {
        let r = graph_stats(&sample()).render();
        assert!(r.contains("product degree"));
        assert!(r.contains("singleton values"));
        assert!(r.contains("values per attribute"));
    }
}
