//! Plain-text serialization of datasets.
//!
//! One self-describing file with sections, tab-separated fields, and
//! no escaping — titles and values are validated to be tab/newline
//! free on write (the generators never emit them). Good enough to
//! persist generated datasets, diff them, or reload them in another
//! process.
//!
//! For catalog-scale inputs that must never be buffered whole, the
//! streaming [`RawTripleReader`] reads bare `title \t attr \t value`
//! lines one at a time, reporting malformed lines with their line
//! number and byte offset so `pge-scan` can quarantine them precisely
//! and resume mid-file.

use crate::dataset::{Dataset, LabeledTriple, Split};
use crate::store::{AttrId, ProductGraph, ProductId, Triple, ValueId};
use std::fmt::Write as _;

/// Serialization/parse failures.
#[derive(Debug, PartialEq, Eq)]
pub enum TsvError {
    /// A string contained a tab or newline and cannot be serialized.
    UnencodableString(String),
    /// Parse failure with a line number and message.
    Parse(usize, String),
}

impl std::fmt::Display for TsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TsvError::UnencodableString(s) => {
                write!(f, "string contains tab/newline: {s:?}")
            }
            TsvError::Parse(line, msg) => write!(f, "parse error at line {line}: {msg}"),
        }
    }
}

impl std::error::Error for TsvError {}

fn check(s: &str) -> Result<&str, TsvError> {
    if s.contains('\t') || s.contains('\n') {
        Err(TsvError::UnencodableString(s.to_string()))
    } else {
        Ok(s)
    }
}

fn write_triple(out: &mut String, t: &Triple) {
    let _ = writeln!(out, "{}\t{}\t{}", t.product.0, t.attr.0, t.value.0);
}

/// Serialize a dataset to the TSV format.
pub fn to_tsv(d: &Dataset) -> Result<String, TsvError> {
    let mut out = String::new();
    let g = &d.graph;
    let split = match d.split {
        Split::Transductive => "transductive",
        Split::Inductive => "inductive",
    };
    let _ = writeln!(out, "#pge-dataset v1 {split}");
    let _ = writeln!(out, "#titles {}", g.num_products());
    for i in 0..g.num_products() {
        let _ = writeln!(out, "{}", check(g.title(ProductId(i as u32)))?);
    }
    let _ = writeln!(out, "#attrs {}", g.num_attrs());
    for i in 0..g.num_attrs() {
        let _ = writeln!(out, "{}", check(g.attr_name(AttrId(i as u16)))?);
    }
    let _ = writeln!(out, "#values {}", g.num_values());
    for i in 0..g.num_values() {
        let _ = writeln!(out, "{}", check(g.value_text(ValueId(i as u32)))?);
    }
    let _ = writeln!(out, "#graph {}", g.num_triples());
    for t in g.triples() {
        write_triple(&mut out, t);
    }
    let _ = writeln!(out, "#train {}", d.train.len());
    for (t, clean) in d.train.iter().zip(&d.train_clean) {
        let _ = writeln!(
            out,
            "{}\t{}\t{}\t{}",
            t.product.0,
            t.attr.0,
            t.value.0,
            if *clean { 1 } else { 0 }
        );
    }
    for (name, set) in [("valid", &d.valid), ("test", &d.test)] {
        let _ = writeln!(out, "#{name} {}", set.len());
        for lt in set.iter() {
            let _ = writeln!(
                out,
                "{}\t{}\t{}\t{}",
                lt.triple.product.0,
                lt.triple.attr.0,
                lt.triple.value.0,
                if lt.correct { 1 } else { 0 }
            );
        }
    }
    Ok(out)
}

/// Parse a dataset previously produced by [`to_tsv`].
pub fn from_tsv(s: &str) -> Result<Dataset, TsvError> {
    let mut lines = s.lines().enumerate();
    let (ln, header) = lines
        .next()
        .ok_or(TsvError::Parse(0, "empty input".into()))?;
    let mut head = header.split_whitespace();
    if head.next() != Some("#pge-dataset") || head.next() != Some("v1") {
        return Err(TsvError::Parse(ln + 1, "bad header".into()));
    }
    let split = match head.next() {
        Some("transductive") => Split::Transductive,
        Some("inductive") => Split::Inductive,
        other => return Err(TsvError::Parse(ln + 1, format!("bad split {other:?}"))),
    };

    /// A parsed section: its declared length and numbered body lines.
    type Section<'a> = (usize, Vec<(usize, &'a str)>);

    fn section<'a>(
        lines: &mut impl Iterator<Item = (usize, &'a str)>,
        name: &str,
    ) -> Result<Section<'a>, TsvError> {
        let (ln, hdr) = lines
            .next()
            .ok_or(TsvError::Parse(0, format!("missing section {name}")))?;
        let mut parts = hdr.split_whitespace();
        let tag = parts.next().unwrap_or("");
        if tag != format!("#{name}") {
            return Err(TsvError::Parse(
                ln + 1,
                format!("expected #{name}, got {tag}"),
            ));
        }
        let n: usize = parts
            .next()
            .and_then(|x| x.parse().ok())
            .ok_or(TsvError::Parse(ln + 1, "bad count".into()))?;
        let body: Vec<(usize, &str)> = lines.take(n).collect();
        if body.len() != n {
            return Err(TsvError::Parse(ln + 1, format!("truncated section {name}")));
        }
        Ok((n, body))
    }

    fn parse_ids(ln: usize, line: &str, want: usize) -> Result<Vec<u32>, TsvError> {
        let ids: Result<Vec<u32>, _> = line.split('\t').map(str::parse).collect();
        let ids = ids.map_err(|e| TsvError::Parse(ln + 1, format!("bad id: {e}")))?;
        if ids.len() != want {
            return Err(TsvError::Parse(
                ln + 1,
                format!("expected {want} fields, got {}", ids.len()),
            ));
        }
        Ok(ids)
    }

    let mut g = ProductGraph::new();
    let (_, titles) = section(&mut lines, "titles")?;
    for (_, t) in titles {
        g.intern_product(t);
    }
    let (_, attrs) = section(&mut lines, "attrs")?;
    for (_, a) in attrs {
        g.intern_attr(a);
    }
    let (_, values) = section(&mut lines, "values")?;
    for (_, v) in values {
        g.intern_value(v);
    }
    let (_, graph_rows) = section(&mut lines, "graph")?;
    for (ln, row) in graph_rows {
        let ids = parse_ids(ln, row, 3)?;
        g.add_triple(Triple::new(
            ProductId(ids[0]),
            AttrId(ids[1] as u16),
            ValueId(ids[2]),
        ));
    }
    let (_, train_rows) = section(&mut lines, "train")?;
    let mut train = Vec::with_capacity(train_rows.len());
    let mut train_clean = Vec::with_capacity(train_rows.len());
    for (ln, row) in train_rows {
        let ids = parse_ids(ln, row, 4)?;
        train.push(Triple::new(
            ProductId(ids[0]),
            AttrId(ids[1] as u16),
            ValueId(ids[2]),
        ));
        train_clean.push(ids[3] == 1);
    }
    fn labeled<'a>(
        name: &str,
        lines: &mut impl Iterator<Item = (usize, &'a str)>,
        parse_ids: impl Fn(usize, &str, usize) -> Result<Vec<u32>, TsvError>,
    ) -> Result<Vec<LabeledTriple>, TsvError> {
        let (_, rows) = section(lines, name)?;
        rows.into_iter()
            .map(|(ln, row)| {
                let ids = parse_ids(ln, row, 4)?;
                Ok(LabeledTriple {
                    triple: Triple::new(ProductId(ids[0]), AttrId(ids[1] as u16), ValueId(ids[2])),
                    correct: ids[3] == 1,
                })
            })
            .collect()
    }
    let valid = labeled("valid", &mut lines, parse_ids)?;
    let test = labeled("test", &mut lines, parse_ids)?;

    Ok(Dataset {
        graph: g,
        train,
        train_clean,
        valid,
        test,
        split,
    })
}

/// One raw-text catalog triple streamed from a bulk-scan input file.
///
/// Unlike the id-interned [`Dataset`] format above, scan input is one
/// `title \t attribute \t value` line per fact, with no header and no
/// interning — the file never has to fit in memory.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RawTriple {
    /// 1-based input line number.
    pub line: usize,
    /// Byte offset of the start of this line in the input.
    pub offset: u64,
    /// The whole line (newline stripped) with the positions of its two
    /// tabs. One owned `String` per row instead of three: a bulk scan
    /// materializes millions of these on the reader thread and frees
    /// them on the committer thread, so the per-row allocation count
    /// is directly visible in end-to-end rows/s.
    text: String,
    tab1: u32,
    tab2: u32,
}

impl RawTriple {
    /// Build a row from already-split fields — how non-TSV inputs
    /// (the binary PGECAT01 catalog) enter the scan pipeline. The
    /// same validation the line parser applies (no embedded tabs, no
    /// empty fields) is enforced here so every downstream consumer
    /// sees one invariant regardless of the input format.
    pub fn from_fields(
        line: usize,
        offset: u64,
        title: &str,
        attr: &str,
        value: &str,
    ) -> Result<RawTriple, RawTripleError> {
        let fields = [("title", title), ("attribute", attr), ("value", value)];
        for (name, f) in fields {
            let reason = if f.trim().is_empty() {
                format!("empty {name} field")
            } else if f.contains('\t') || f.contains('\n') {
                format!("{name} field contains a tab or newline")
            } else {
                continue;
            };
            return Err(RawTripleError {
                line,
                offset,
                reason,
                raw: format!("{title}\t{attr}\t{value}"),
            });
        }
        Ok(RawTriple {
            line,
            offset,
            text: format!("{title}\t{attr}\t{value}"),
            tab1: title.len() as u32,
            tab2: (title.len() + 1 + attr.len()) as u32,
        })
    }

    pub fn title(&self) -> &str {
        &self.text[..self.tab1 as usize]
    }

    pub fn attr(&self) -> &str {
        &self.text[self.tab1 as usize + 1..self.tab2 as usize]
    }

    pub fn value(&self) -> &str {
        &self.text[self.tab2 as usize + 1..]
    }

    /// The full `title \t attr \t value` line as read (without the
    /// newline) — what quarantine records and scored output lines
    /// embed verbatim.
    pub fn text(&self) -> &str {
        &self.text
    }
}

/// A line the raw-triple reader could not parse. Carries enough
/// position information (line number *and* byte offset) for a scan to
/// quarantine the exact input line and resume past it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RawTripleError {
    /// 1-based input line number.
    pub line: usize,
    /// Byte offset of the start of the offending line.
    pub offset: u64,
    pub reason: String,
    /// The offending line, lossily decoded for diagnostics.
    pub raw: String,
}

impl RawTripleError {
    /// True when this is an I/O failure of the underlying reader (the
    /// stream fuses after one) rather than a malformed line. Scans
    /// must abort on these instead of quarantining them as data.
    pub fn is_read_failure(&self) -> bool {
        self.reason.starts_with("read error")
    }
}

impl std::fmt::Display for RawTripleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "line {} (offset {}): {}: {:?}",
            self.line, self.offset, self.reason, self.raw
        )
    }
}

impl std::error::Error for RawTripleError {}

/// Streaming line-at-a-time reader of raw `title \t attr \t value`
/// triples.
///
/// Reads one line per `next()` call into a reused buffer — memory
/// stays O(longest line) no matter how large the input is. Blank
/// lines and `#` comments are skipped (but still counted, so line
/// numbers match the file). Malformed lines (non-UTF-8, not exactly
/// three fields, an empty field) are yielded as [`RawTripleError`]s
/// rather than aborting the stream.
pub struct RawTripleReader<R: std::io::BufRead> {
    inner: R,
    /// Lines consumed so far (== the line number of the last line).
    line: usize,
    /// Byte offset just past the last consumed line.
    offset: u64,
    buf: Vec<u8>,
    /// Set at EOF or after an I/O error: the stream yields nothing
    /// further (a persistent disk error must not loop forever).
    fused: bool,
}

impl<R: std::io::BufRead> RawTripleReader<R> {
    pub fn new(inner: R) -> Self {
        Self::with_position(inner, 0, 0)
    }

    /// Resume mid-file: `inner` must already be positioned at byte
    /// `offset`, which must be the start of line `lines_done + 1`.
    pub fn with_position(inner: R, lines_done: usize, offset: u64) -> Self {
        RawTripleReader {
            inner,
            line: lines_done,
            offset,
            buf: Vec::new(),
            fused: false,
        }
    }

    /// Lines consumed so far.
    pub fn lines_done(&self) -> usize {
        self.line
    }

    /// Byte offset just past the last consumed line — the position a
    /// resumed reader should start from.
    pub fn offset(&self) -> u64 {
        self.offset
    }
}

impl<R: std::io::BufRead> Iterator for RawTripleReader<R> {
    type Item = Result<RawTriple, RawTripleError>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if self.fused {
                return None;
            }
            self.buf.clear();
            let start = self.offset;
            let n = match self.inner.read_until(b'\n', &mut self.buf) {
                Ok(0) => {
                    self.fused = true;
                    return None;
                }
                Ok(n) => n,
                Err(e) => {
                    // An I/O error mid-stream is unrecoverable for a
                    // line-oriented reader; surface it once and stop.
                    self.fused = true;
                    self.line += 1;
                    return Some(Err(RawTripleError {
                        line: self.line,
                        offset: start,
                        reason: format!("read error: {e}"),
                        raw: String::new(),
                    }));
                }
            };
            self.offset += n as u64;
            self.line += 1;
            let mut bytes: &[u8] = &self.buf;
            if bytes.last() == Some(&b'\n') {
                bytes = &bytes[..bytes.len() - 1];
            }
            if bytes.last() == Some(&b'\r') {
                bytes = &bytes[..bytes.len() - 1];
            }
            if bytes.is_empty() || bytes.first() == Some(&b'#') {
                continue; // blank line or comment
            }
            let text = match std::str::from_utf8(bytes) {
                Ok(t) => t,
                Err(e) => {
                    return Some(Err(RawTripleError {
                        line: self.line,
                        offset: start,
                        reason: format!("invalid UTF-8: {e}"),
                        raw: String::from_utf8_lossy(bytes).into_owned(),
                    }))
                }
            };
            // Locate the two tabs instead of splitting into owned
            // fields: the row keeps the whole line as one `String` and
            // borrows the three fields out of it on demand.
            let lb = text.as_bytes();
            let tab1 = lb.iter().position(|&c| c == b'\t');
            let tab2 = tab1.and_then(|i| {
                lb[i + 1..]
                    .iter()
                    .position(|&c| c == b'\t')
                    .map(|j| i + 1 + j)
            });
            let (tab1, tab2) = match (tab1, tab2) {
                (Some(a), Some(b)) if !lb[b + 1..].contains(&b'\t') => (a, b),
                _ => {
                    return Some(Err(RawTripleError {
                        line: self.line,
                        offset: start,
                        reason: format!(
                            "expected 3 tab-separated fields, got {}",
                            text.split('\t').count()
                        ),
                        raw: text.to_string(),
                    }))
                }
            };
            let fields = [&text[..tab1], &text[tab1 + 1..tab2], &text[tab2 + 1..]];
            if let Some(i) = fields.iter().position(|f| f.trim().is_empty()) {
                let name = ["title", "attribute", "value"][i];
                return Some(Err(RawTripleError {
                    line: self.line,
                    offset: start,
                    reason: format!("empty {name} field"),
                    raw: text.to_string(),
                }));
            }
            return Some(Ok(RawTriple {
                line: self.line,
                offset: start,
                text: text.to_string(),
                tab1: tab1 as u32,
                tab2: tab2 as u32,
            }));
        }
    }
}

/// Write every graph triple of `d` as raw `title \t attr \t value`
/// lines — the bulk-scan input format. Returns the line count.
pub fn write_raw_triples(d: &Dataset, mut w: impl std::io::Write) -> std::io::Result<u64> {
    let g = &d.graph;
    let mut n = 0u64;
    for t in g.triples() {
        writeln!(
            w,
            "{}\t{}\t{}",
            g.title(t.product),
            g.attr_name(t.attr),
            g.value_text(t.value)
        )?;
        n += 1;
    }
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Dataset {
        let mut g = ProductGraph::new();
        let t0 = g.add_fact("tortilla chips spicy queso", "flavor", "spicy queso");
        let t1 = g.add_fact("bean chips", "flavor", "cheddar");
        let bad = Triple::new(t1.product, t1.attr, t0.value);
        let mut d = Dataset::new(
            g,
            vec![t0, t1],
            vec![LabeledTriple {
                triple: t0,
                correct: true,
            }],
            vec![LabeledTriple {
                triple: bad,
                correct: false,
            }],
        );
        d.train_clean = vec![true, false];
        d
    }

    #[test]
    fn round_trip() {
        let d = sample();
        let text = to_tsv(&d).unwrap();
        let back = from_tsv(&text).unwrap();
        assert_eq!(back.graph.num_products(), d.graph.num_products());
        assert_eq!(back.graph.num_values(), d.graph.num_values());
        assert_eq!(back.graph.triples(), d.graph.triples());
        assert_eq!(back.train, d.train);
        assert_eq!(back.train_clean, d.train_clean);
        assert_eq!(back.valid, d.valid);
        assert_eq!(back.test, d.test);
        assert_eq!(back.split, d.split);
        assert_eq!(back.graph.title(ProductId(0)), "tortilla chips spicy queso");
    }

    #[test]
    fn rejects_tabs_in_strings() {
        let mut g = ProductGraph::new();
        g.add_fact("bad\ttitle", "flavor", "x");
        let d = Dataset::new(g, vec![], vec![], vec![]);
        assert!(matches!(to_tsv(&d), Err(TsvError::UnencodableString(_))));
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_tsv("").is_err());
        assert!(from_tsv("#pge-dataset v2 transductive").is_err());
        assert!(from_tsv("#pge-dataset v1 sideways").is_err());
        let truncated = "#pge-dataset v1 transductive\n#titles 3\nonly-one";
        assert!(from_tsv(truncated).is_err());
    }

    #[test]
    fn error_messages_carry_line_numbers() {
        let bad = "#pge-dataset v1 transductive\n#titles 0\n#attrs 0\n#values 0\n#graph 1\nnot-an-id\t0\t0";
        match from_tsv(bad) {
            Err(TsvError::Parse(line, _)) => assert_eq!(line, 6),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    // --- RawTripleReader -------------------------------------------

    fn raw(input: &[u8]) -> Vec<Result<RawTriple, RawTripleError>> {
        RawTripleReader::new(std::io::BufReader::new(input)).collect()
    }

    #[test]
    fn raw_reader_parses_good_lines_with_positions() {
        let input = b"chips\tflavor\tspicy\ngranola\tgrain\toats\n";
        let rows = raw(input);
        assert_eq!(rows.len(), 2);
        let a = rows[0].as_ref().unwrap();
        assert_eq!((a.line, a.offset), (1, 0));
        assert_eq!(
            (a.title(), a.attr(), a.value()),
            ("chips", "flavor", "spicy")
        );
        let b = rows[1].as_ref().unwrap();
        assert_eq!((b.line, b.offset), (2, 19));
        assert_eq!(b.title(), "granola");
    }

    #[test]
    fn raw_reader_skips_blanks_and_comments_keeping_line_numbers() {
        let input = b"# header comment\n\nchips\tflavor\tspicy\r\n\n";
        let rows = raw(input);
        assert_eq!(rows.len(), 1);
        let t = rows[0].as_ref().unwrap();
        assert_eq!(t.line, 3, "comment and blank still count as lines");
        assert_eq!(t.value(), "spicy"); // \r\n stripped
    }

    #[test]
    fn raw_reader_quarantines_malformed_lines_and_continues() {
        let input = b"only-two\tfields\nchips\tflavor\tspicy\na\tb\tc\td\n\t\t\nok\tattr\tval";
        let rows = raw(input);
        assert_eq!(rows.len(), 5);
        let e = rows[0].as_ref().unwrap_err();
        assert_eq!((e.line, e.offset), (1, 0));
        assert!(e.reason.contains("got 2"), "{e}");
        assert!(rows[1].is_ok());
        let e = rows[2].as_ref().unwrap_err();
        assert!(e.reason.contains("got 4"), "{e}");
        let e = rows[3].as_ref().unwrap_err();
        assert!(e.reason.contains("empty title"), "{e}");
        // Final line without trailing newline still parses.
        assert_eq!(rows[4].as_ref().unwrap().value(), "val");
    }

    #[test]
    fn raw_reader_reports_invalid_utf8_with_position() {
        let input: &[u8] = b"ok\tattr\tval\n\xff\xfe\tbroken\tline\nok2\tattr\tval2\n";
        let rows = raw(input);
        assert_eq!(rows.len(), 3);
        let e = rows[1].as_ref().unwrap_err();
        assert_eq!(e.line, 2);
        assert_eq!(e.offset, 12);
        assert!(e.reason.contains("UTF-8"), "{e}");
        assert!(rows[2].is_ok(), "reader recovers after a bad line");
    }

    #[test]
    fn raw_reader_resumes_from_recorded_position() {
        let input = b"a\tx\t1\nb\ty\t2\nc\tz\t3\n";
        let mut first = RawTripleReader::new(std::io::BufReader::new(&input[..]));
        first.next().unwrap().unwrap();
        let (lines, offset) = (first.lines_done(), first.offset());
        assert_eq!((lines, offset), (1, 6));
        let rest = &input[offset as usize..];
        let resumed: Vec<_> =
            RawTripleReader::with_position(std::io::BufReader::new(rest), lines, offset)
                .map(|r| r.unwrap())
                .collect();
        let straight: Vec<_> = raw(input).into_iter().map(|r| r.unwrap()).collect();
        assert_eq!(
            resumed,
            straight[1..].to_vec(),
            "positions and content match"
        );
    }

    #[test]
    fn write_raw_triples_round_trips_through_reader() {
        let d = sample();
        let mut buf = Vec::new();
        let n = write_raw_triples(&d, &mut buf).unwrap();
        assert_eq!(n, d.graph.num_triples() as u64);
        let rows: Vec<RawTriple> = raw(&buf).into_iter().map(|r| r.unwrap()).collect();
        assert_eq!(rows.len(), d.graph.num_triples());
        assert_eq!(rows[0].title(), "tortilla chips spicy queso");
        assert_eq!(rows[0].attr(), "flavor");
    }
}
