//! Plain-text serialization of datasets.
//!
//! One self-describing file with sections, tab-separated fields, and
//! no escaping — titles and values are validated to be tab/newline
//! free on write (the generators never emit them). Good enough to
//! persist generated datasets, diff them, or reload them in another
//! process.

use crate::dataset::{Dataset, LabeledTriple, Split};
use crate::store::{AttrId, ProductGraph, ProductId, Triple, ValueId};
use std::fmt::Write as _;

/// Serialization/parse failures.
#[derive(Debug, PartialEq, Eq)]
pub enum TsvError {
    /// A string contained a tab or newline and cannot be serialized.
    UnencodableString(String),
    /// Parse failure with a line number and message.
    Parse(usize, String),
}

impl std::fmt::Display for TsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TsvError::UnencodableString(s) => {
                write!(f, "string contains tab/newline: {s:?}")
            }
            TsvError::Parse(line, msg) => write!(f, "parse error at line {line}: {msg}"),
        }
    }
}

impl std::error::Error for TsvError {}

fn check(s: &str) -> Result<&str, TsvError> {
    if s.contains('\t') || s.contains('\n') {
        Err(TsvError::UnencodableString(s.to_string()))
    } else {
        Ok(s)
    }
}

fn write_triple(out: &mut String, t: &Triple) {
    let _ = writeln!(out, "{}\t{}\t{}", t.product.0, t.attr.0, t.value.0);
}

/// Serialize a dataset to the TSV format.
pub fn to_tsv(d: &Dataset) -> Result<String, TsvError> {
    let mut out = String::new();
    let g = &d.graph;
    let split = match d.split {
        Split::Transductive => "transductive",
        Split::Inductive => "inductive",
    };
    let _ = writeln!(out, "#pge-dataset v1 {split}");
    let _ = writeln!(out, "#titles {}", g.num_products());
    for i in 0..g.num_products() {
        let _ = writeln!(out, "{}", check(g.title(ProductId(i as u32)))?);
    }
    let _ = writeln!(out, "#attrs {}", g.num_attrs());
    for i in 0..g.num_attrs() {
        let _ = writeln!(out, "{}", check(g.attr_name(AttrId(i as u16)))?);
    }
    let _ = writeln!(out, "#values {}", g.num_values());
    for i in 0..g.num_values() {
        let _ = writeln!(out, "{}", check(g.value_text(ValueId(i as u32)))?);
    }
    let _ = writeln!(out, "#graph {}", g.num_triples());
    for t in g.triples() {
        write_triple(&mut out, t);
    }
    let _ = writeln!(out, "#train {}", d.train.len());
    for (t, clean) in d.train.iter().zip(&d.train_clean) {
        let _ = writeln!(
            out,
            "{}\t{}\t{}\t{}",
            t.product.0,
            t.attr.0,
            t.value.0,
            if *clean { 1 } else { 0 }
        );
    }
    for (name, set) in [("valid", &d.valid), ("test", &d.test)] {
        let _ = writeln!(out, "#{name} {}", set.len());
        for lt in set.iter() {
            let _ = writeln!(
                out,
                "{}\t{}\t{}\t{}",
                lt.triple.product.0,
                lt.triple.attr.0,
                lt.triple.value.0,
                if lt.correct { 1 } else { 0 }
            );
        }
    }
    Ok(out)
}

/// Parse a dataset previously produced by [`to_tsv`].
pub fn from_tsv(s: &str) -> Result<Dataset, TsvError> {
    let mut lines = s.lines().enumerate();
    let (ln, header) = lines
        .next()
        .ok_or(TsvError::Parse(0, "empty input".into()))?;
    let mut head = header.split_whitespace();
    if head.next() != Some("#pge-dataset") || head.next() != Some("v1") {
        return Err(TsvError::Parse(ln + 1, "bad header".into()));
    }
    let split = match head.next() {
        Some("transductive") => Split::Transductive,
        Some("inductive") => Split::Inductive,
        other => return Err(TsvError::Parse(ln + 1, format!("bad split {other:?}"))),
    };

    /// A parsed section: its declared length and numbered body lines.
    type Section<'a> = (usize, Vec<(usize, &'a str)>);

    fn section<'a>(
        lines: &mut impl Iterator<Item = (usize, &'a str)>,
        name: &str,
    ) -> Result<Section<'a>, TsvError> {
        let (ln, hdr) = lines
            .next()
            .ok_or(TsvError::Parse(0, format!("missing section {name}")))?;
        let mut parts = hdr.split_whitespace();
        let tag = parts.next().unwrap_or("");
        if tag != format!("#{name}") {
            return Err(TsvError::Parse(
                ln + 1,
                format!("expected #{name}, got {tag}"),
            ));
        }
        let n: usize = parts
            .next()
            .and_then(|x| x.parse().ok())
            .ok_or(TsvError::Parse(ln + 1, "bad count".into()))?;
        let body: Vec<(usize, &str)> = lines.take(n).collect();
        if body.len() != n {
            return Err(TsvError::Parse(ln + 1, format!("truncated section {name}")));
        }
        Ok((n, body))
    }

    fn parse_ids(ln: usize, line: &str, want: usize) -> Result<Vec<u32>, TsvError> {
        let ids: Result<Vec<u32>, _> = line.split('\t').map(str::parse).collect();
        let ids = ids.map_err(|e| TsvError::Parse(ln + 1, format!("bad id: {e}")))?;
        if ids.len() != want {
            return Err(TsvError::Parse(
                ln + 1,
                format!("expected {want} fields, got {}", ids.len()),
            ));
        }
        Ok(ids)
    }

    let mut g = ProductGraph::new();
    let (_, titles) = section(&mut lines, "titles")?;
    for (_, t) in titles {
        g.intern_product(t);
    }
    let (_, attrs) = section(&mut lines, "attrs")?;
    for (_, a) in attrs {
        g.intern_attr(a);
    }
    let (_, values) = section(&mut lines, "values")?;
    for (_, v) in values {
        g.intern_value(v);
    }
    let (_, graph_rows) = section(&mut lines, "graph")?;
    for (ln, row) in graph_rows {
        let ids = parse_ids(ln, row, 3)?;
        g.add_triple(Triple::new(
            ProductId(ids[0]),
            AttrId(ids[1] as u16),
            ValueId(ids[2]),
        ));
    }
    let (_, train_rows) = section(&mut lines, "train")?;
    let mut train = Vec::with_capacity(train_rows.len());
    let mut train_clean = Vec::with_capacity(train_rows.len());
    for (ln, row) in train_rows {
        let ids = parse_ids(ln, row, 4)?;
        train.push(Triple::new(
            ProductId(ids[0]),
            AttrId(ids[1] as u16),
            ValueId(ids[2]),
        ));
        train_clean.push(ids[3] == 1);
    }
    fn labeled<'a>(
        name: &str,
        lines: &mut impl Iterator<Item = (usize, &'a str)>,
        parse_ids: impl Fn(usize, &str, usize) -> Result<Vec<u32>, TsvError>,
    ) -> Result<Vec<LabeledTriple>, TsvError> {
        let (_, rows) = section(lines, name)?;
        rows.into_iter()
            .map(|(ln, row)| {
                let ids = parse_ids(ln, row, 4)?;
                Ok(LabeledTriple {
                    triple: Triple::new(ProductId(ids[0]), AttrId(ids[1] as u16), ValueId(ids[2])),
                    correct: ids[3] == 1,
                })
            })
            .collect()
    }
    let valid = labeled("valid", &mut lines, parse_ids)?;
    let test = labeled("test", &mut lines, parse_ids)?;

    Ok(Dataset {
        graph: g,
        train,
        train_clean,
        valid,
        test,
        split,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Dataset {
        let mut g = ProductGraph::new();
        let t0 = g.add_fact("tortilla chips spicy queso", "flavor", "spicy queso");
        let t1 = g.add_fact("bean chips", "flavor", "cheddar");
        let bad = Triple::new(t1.product, t1.attr, t0.value);
        let mut d = Dataset::new(
            g,
            vec![t0, t1],
            vec![LabeledTriple {
                triple: t0,
                correct: true,
            }],
            vec![LabeledTriple {
                triple: bad,
                correct: false,
            }],
        );
        d.train_clean = vec![true, false];
        d
    }

    #[test]
    fn round_trip() {
        let d = sample();
        let text = to_tsv(&d).unwrap();
        let back = from_tsv(&text).unwrap();
        assert_eq!(back.graph.num_products(), d.graph.num_products());
        assert_eq!(back.graph.num_values(), d.graph.num_values());
        assert_eq!(back.graph.triples(), d.graph.triples());
        assert_eq!(back.train, d.train);
        assert_eq!(back.train_clean, d.train_clean);
        assert_eq!(back.valid, d.valid);
        assert_eq!(back.test, d.test);
        assert_eq!(back.split, d.split);
        assert_eq!(back.graph.title(ProductId(0)), "tortilla chips spicy queso");
    }

    #[test]
    fn rejects_tabs_in_strings() {
        let mut g = ProductGraph::new();
        g.add_fact("bad\ttitle", "flavor", "x");
        let d = Dataset::new(g, vec![], vec![], vec![]);
        assert!(matches!(to_tsv(&d), Err(TsvError::UnencodableString(_))));
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_tsv("").is_err());
        assert!(from_tsv("#pge-dataset v2 transductive").is_err());
        assert!(from_tsv("#pge-dataset v1 sideways").is_err());
        let truncated = "#pge-dataset v1 transductive\n#titles 3\nonly-one";
        assert!(from_tsv(truncated).is_err());
    }

    #[test]
    fn error_messages_carry_line_numbers() {
        let bad = "#pge-dataset v1 transductive\n#titles 0\n#attrs 0\n#values 0\n#graph 1\nnot-an-id\t0\t0";
        match from_tsv(bad) {
            Err(TsvError::Parse(line, _)) => assert_eq!(line, 6),
            other => panic!("expected parse error, got {other:?}"),
        }
    }
}
