//! Negative sampling by attribute-value corruption.
//!
//! For each observed triple `(t, a, v)` the paper samples negatives
//! `N(t,a,v) ⊂ {(t, a, v') | v' ∈ V}` by replacing the value with a
//! random value from `V` (global uniform). A per-attribute mode is
//! also provided: sampling `v'` from the values observed with
//! attribute `a` yields harder negatives and is used by ablations.

use crate::store::{ProductGraph, Triple, ValueId};
use rand::Rng;

/// Where corrupted values are drawn from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SamplingMode {
    /// Any value in `V` (the paper's default).
    GlobalUniform,
    /// Values observed with the same attribute (harder negatives).
    PerAttribute,
}

/// Pre-indexed corruption sampler.
#[derive(Clone, Debug)]
pub struct NegativeSampler {
    num_values: u32,
    per_attr: Vec<Vec<ValueId>>,
    mode: SamplingMode,
}

impl NegativeSampler {
    pub fn new(graph: &ProductGraph, mode: SamplingMode) -> Self {
        NegativeSampler {
            num_values: graph.num_values() as u32,
            per_attr: graph.values_by_attr(),
            mode,
        }
    }

    #[inline]
    pub fn mode(&self) -> SamplingMode {
        self.mode
    }

    /// Sample one corrupted value `v' != v` for `triple`.
    ///
    /// Falls back to global sampling when an attribute has a single
    /// observed value (no valid per-attribute corruption exists).
    /// Returns `None` only when the graph has fewer than two values.
    pub fn sample_one<R: Rng>(&self, rng: &mut R, triple: &Triple) -> Option<ValueId> {
        if self.num_values < 2 {
            return None;
        }
        // Rejection sampling; collision probability is 1/|pool| so a
        // couple of draws almost always suffice.
        for _ in 0..64 {
            let candidate = match self.mode {
                SamplingMode::GlobalUniform => ValueId(rng.gen_range(0..self.num_values)),
                SamplingMode::PerAttribute => {
                    let pool = &self.per_attr[triple.attr.0 as usize];
                    if pool.len() < 2 {
                        ValueId(rng.gen_range(0..self.num_values))
                    } else {
                        pool[rng.gen_range(0..pool.len())]
                    }
                }
            };
            if candidate != triple.value {
                return Some(candidate);
            }
        }
        // Pathological pool: every draw collided with the true value.
        // The fallback must respect per-attribute mode — the old
        // unconditional global 0/1 fallback leaked values from other
        // attributes into "hard negative" batches.
        if self.mode == SamplingMode::PerAttribute {
            let pool = &self.per_attr[triple.attr.0 as usize];
            if let Some(v) = pool.iter().copied().find(|&v| v != triple.value) {
                return Some(v);
            }
        }
        let alt = if triple.value.0 == 0 { 1 } else { 0 };
        Some(ValueId(alt))
    }

    /// Sample `k` corrupted values (with replacement across draws).
    pub fn sample<R: Rng>(&self, rng: &mut R, triple: &Triple, k: usize) -> Vec<ValueId> {
        let mut out = Vec::with_capacity(k);
        for _ in 0..k {
            if let Some(v) = self.sample_one(rng, triple) {
                out.push(v);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn graph() -> ProductGraph {
        let mut g = ProductGraph::new();
        g.add_fact("p0", "flavor", "spicy");
        g.add_fact("p1", "flavor", "sweet");
        g.add_fact("p2", "scent", "mint");
        g.add_fact("p3", "scent", "rose");
        g.add_fact("p4", "scent", "lavender");
        g
    }

    #[test]
    fn never_returns_true_value() {
        let g = graph();
        let s = NegativeSampler::new(&g, SamplingMode::GlobalUniform);
        let mut rng = StdRng::seed_from_u64(1);
        let t = g.triples()[0];
        for _ in 0..200 {
            let v = s.sample_one(&mut rng, &t).unwrap();
            assert_ne!(v, t.value);
        }
    }

    #[test]
    fn per_attribute_mode_stays_in_pool() {
        let g = graph();
        let s = NegativeSampler::new(&g, SamplingMode::PerAttribute);
        let mut rng = StdRng::seed_from_u64(2);
        let scent_triple = g.triples()[2]; // (p2, scent, mint)
        let scent_pool: Vec<ValueId> = ["mint", "rose", "lavender"]
            .iter()
            .map(|v| g.lookup_value(v).unwrap())
            .collect();
        for _ in 0..100 {
            let v = s.sample_one(&mut rng, &scent_triple).unwrap();
            assert!(scent_pool.contains(&v), "{v:?} outside scent pool");
            assert_ne!(v, scent_triple.value);
        }
    }

    #[test]
    fn per_attribute_falls_back_when_pool_too_small() {
        let mut g = ProductGraph::new();
        g.add_fact("p0", "flavor", "only");
        g.add_fact("p1", "scent", "mint");
        let s = NegativeSampler::new(&g, SamplingMode::PerAttribute);
        let mut rng = StdRng::seed_from_u64(3);
        // "flavor" has a single value; sampler must still produce a
        // corruption (from the global pool).
        let v = s.sample_one(&mut rng, &g.triples()[0]).unwrap();
        assert_ne!(v, g.triples()[0].value);
    }

    #[test]
    fn pathological_fallback_respects_per_attribute_pool() {
        // Regression: a constant RNG makes all 64 rejection draws hit
        // the true value, forcing the fallback path — which used to
        // return the global ValueId(0)/ValueId(1) pair regardless of
        // mode, leaking out-of-attribute values.
        let g = graph();
        let s = NegativeSampler::new(&g, SamplingMode::PerAttribute);
        let scent_triple = g.triples()[2]; // (p2, scent, mint)
        let scent_pool: Vec<ValueId> = ["mint", "rose", "lavender"]
            .iter()
            .map(|v| g.lookup_value(v).unwrap())
            .collect();
        // StepRng(0, 0) always yields index 0 = mint = the true value.
        let mut rng = rand::rngs::mock::StepRng::new(0, 0);
        let v = s.sample_one(&mut rng, &scent_triple).unwrap();
        assert!(scent_pool.contains(&v), "fallback {v:?} left the pool");
        assert_ne!(v, scent_triple.value);
    }

    #[test]
    fn single_value_graph_yields_none() {
        let mut g = ProductGraph::new();
        g.add_fact("p0", "flavor", "only");
        let s = NegativeSampler::new(&g, SamplingMode::GlobalUniform);
        let mut rng = StdRng::seed_from_u64(4);
        assert_eq!(s.sample_one(&mut rng, &g.triples()[0]), None);
    }

    #[test]
    fn sample_k_returns_k() {
        let g = graph();
        let s = NegativeSampler::new(&g, SamplingMode::GlobalUniform);
        let mut rng = StdRng::seed_from_u64(5);
        assert_eq!(s.sample(&mut rng, &g.triples()[0], 7).len(), 7);
    }

    #[test]
    fn global_mode_covers_the_value_space() {
        let g = graph();
        let s = NegativeSampler::new(&g, SamplingMode::GlobalUniform);
        let mut rng = StdRng::seed_from_u64(6);
        let t = g.triples()[0];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..500 {
            seen.insert(s.sample_one(&mut rng, &t).unwrap());
        }
        // 4 possible corruptions (5 values minus the true one).
        assert_eq!(seen.len(), 4);
    }
}
