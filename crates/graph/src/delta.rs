//! Streaming triple deltas: the incremental-training input format.
//!
//! A catalog churns as adds, updates, and retractions; `pge train
//! --incremental` consumes them as a *delta stream* — a plain-text
//! file of ingest windows, each holding `op \t title \t attr \t value`
//! lines (an update is a retract followed by an add of the same
//! `(title, attr)` with the new value):
//!
//! ```text
//! #pge-delta v1
//! #window 0 2
//! add\tbrand9 spicy chips\tflavor\tspicy
//! retract\tbrand3 cola drink\tflavor\tcola
//! #window 1 1
//! add\tbrand3 cola drink\tflavor\tvanilla
//! ```
//!
//! Window boundaries are the unit of everything downstream: the
//! incremental trainer fine-tunes, checkpoints, snapshots, and pushes
//! once per window, and kill+resume is exact at any window boundary.
//! [`stream_fingerprint`] hashes a window prefix so a resumed run can
//! prove it is replaying the same stream the checkpoint ingested.

use crate::dataset::Dataset;
use crate::store::Triple;
use std::collections::HashMap;
use std::io::{BufRead, Write};

/// What a delta line does to the graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeltaOp {
    /// A new `(title, attr, value)` training fact.
    Add,
    /// An existing training fact is withdrawn.
    Retract,
}

impl DeltaOp {
    pub fn name(&self) -> &'static str {
        match self {
            DeltaOp::Add => "add",
            DeltaOp::Retract => "retract",
        }
    }
}

/// One delta line: an op over a raw-text triple.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TripleDelta {
    pub op: DeltaOp,
    pub title: String,
    pub attr: String,
    pub value: String,
}

/// One ingest window of the stream.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeltaWindow {
    /// Position in the stream (windows are numbered 0..).
    pub index: usize,
    pub ops: Vec<TripleDelta>,
}

/// Serialization/parse failures of the delta format.
#[derive(Debug, PartialEq, Eq)]
pub enum DeltaError {
    /// A field contained a tab or newline and cannot be serialized.
    Unencodable(String),
    /// Parse failure with a 1-based line number and message.
    Parse(usize, String),
    Io(String),
}

impl std::fmt::Display for DeltaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeltaError::Unencodable(s) => write!(f, "string contains tab/newline: {s:?}"),
            DeltaError::Parse(line, msg) => write!(f, "delta parse error at line {line}: {msg}"),
            DeltaError::Io(msg) => write!(f, "delta I/O error: {msg}"),
        }
    }
}

impl std::error::Error for DeltaError {}

fn check(s: &str) -> Result<&str, DeltaError> {
    if s.contains('\t') || s.contains('\n') {
        Err(DeltaError::Unencodable(s.to_string()))
    } else {
        Ok(s)
    }
}

/// Magic first line of a delta stream.
pub const DELTA_HEADER: &str = "#pge-delta v1";

/// Write a delta stream. Windows keep their own indices, which must be
/// consecutive from 0 (the reader enforces this too — a truncated or
/// spliced stream must not pass silently).
pub fn write_delta_stream(windows: &[DeltaWindow], mut w: impl Write) -> Result<(), DeltaError> {
    let io = |e: std::io::Error| DeltaError::Io(e.to_string());
    writeln!(w, "{DELTA_HEADER}").map_err(io)?;
    for (k, win) in windows.iter().enumerate() {
        if win.index != k {
            return Err(DeltaError::Unencodable(format!(
                "window {k} carries index {} — windows must be consecutive from 0",
                win.index
            )));
        }
        writeln!(w, "#window {} {}", win.index, win.ops.len()).map_err(io)?;
        for d in &win.ops {
            writeln!(
                w,
                "{}\t{}\t{}\t{}",
                d.op.name(),
                check(&d.title)?,
                check(&d.attr)?,
                check(&d.value)?
            )
            .map_err(io)?;
        }
    }
    Ok(())
}

/// Read a whole delta stream. Windows are modest (a few percent of a
/// catalog each), so buffering one stream is fine; the per-window
/// ingest loop downstream is what must never buffer the catalog.
pub fn read_delta_stream(r: impl BufRead) -> Result<Vec<DeltaWindow>, DeltaError> {
    let mut windows: Vec<DeltaWindow> = Vec::new();
    let mut expected_ops: usize = 0;
    let mut saw_header = false;
    for (ln0, line) in r.lines().enumerate() {
        let ln = ln0 + 1;
        let line = line.map_err(|e| DeltaError::Io(format!("line {ln}: {e}")))?;
        let line = line.trim_end_matches('\r');
        if !saw_header {
            if line != DELTA_HEADER {
                return Err(DeltaError::Parse(
                    ln,
                    format!("expected {DELTA_HEADER:?}, got {line:?}"),
                ));
            }
            saw_header = true;
            continue;
        }
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("#window ") {
            if let Some(w) = windows.last() {
                if w.ops.len() != expected_ops {
                    return Err(DeltaError::Parse(
                        ln,
                        format!(
                            "window {} declared {expected_ops} ops but has {}",
                            w.index,
                            w.ops.len()
                        ),
                    ));
                }
            }
            let mut parts = rest.split_whitespace();
            let index: usize = parts
                .next()
                .and_then(|x| x.parse().ok())
                .ok_or_else(|| DeltaError::Parse(ln, "bad window index".into()))?;
            let count: usize = parts
                .next()
                .and_then(|x| x.parse().ok())
                .ok_or_else(|| DeltaError::Parse(ln, "bad window op count".into()))?;
            if index != windows.len() {
                return Err(DeltaError::Parse(
                    ln,
                    format!("expected window {}, got {index}", windows.len()),
                ));
            }
            expected_ops = count;
            windows.push(DeltaWindow {
                index,
                ops: Vec::with_capacity(count),
            });
            continue;
        }
        if line.starts_with('#') {
            continue; // comment
        }
        let win = windows
            .last_mut()
            .ok_or_else(|| DeltaError::Parse(ln, "delta line before any #window".into()))?;
        let mut f = line.split('\t');
        let (op, title, attr, value) = match (f.next(), f.next(), f.next(), f.next(), f.next()) {
            (Some(op), Some(t), Some(a), Some(v), None) => (op, t, a, v),
            _ => {
                return Err(DeltaError::Parse(
                    ln,
                    format!(
                        "expected 4 tab-separated fields, got {}",
                        line.split('\t').count()
                    ),
                ))
            }
        };
        let op = match op {
            "add" => DeltaOp::Add,
            "retract" => DeltaOp::Retract,
            other => return Err(DeltaError::Parse(ln, format!("unknown op {other:?}"))),
        };
        if [title, attr, value].iter().any(|s| s.trim().is_empty()) {
            return Err(DeltaError::Parse(ln, "empty field".into()));
        }
        win.ops.push(TripleDelta {
            op,
            title: title.to_string(),
            attr: attr.to_string(),
            value: value.to_string(),
        });
    }
    if !saw_header {
        return Err(DeltaError::Parse(0, "empty delta stream".into()));
    }
    if let Some(w) = windows.last() {
        if w.ops.len() != expected_ops {
            return Err(DeltaError::Parse(
                0,
                format!(
                    "stream truncated: window {} declared {expected_ops} ops but has {}",
                    w.index,
                    w.ops.len()
                ),
            ));
        }
    }
    Ok(windows)
}

// FNV-1a 64-bit — the workspace's zero-dependency stable hash.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

fn fnv1a(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

fn fnv_str(h: u64, s: &str) -> u64 {
    // Length-prefixed so "ab","c" and "a","bc" hash differently.
    fnv1a(fnv1a(h, &(s.len() as u64).to_le_bytes()), s.as_bytes())
}

/// Fold one window into a running fingerprint.
pub fn window_fingerprint(mut h: u64, w: &DeltaWindow) -> u64 {
    h = fnv1a(h, &(w.index as u64).to_le_bytes());
    h = fnv1a(h, &(w.ops.len() as u64).to_le_bytes());
    for d in &w.ops {
        h = fnv_str(h, d.op.name());
        h = fnv_str(h, &d.title);
        h = fnv_str(h, &d.attr);
        h = fnv_str(h, &d.value);
    }
    h
}

/// Fingerprint of a window prefix: the value an incremental checkpoint
/// stores after ingesting `windows`, verified against the stream on
/// resume.
pub fn stream_fingerprint(windows: &[DeltaWindow]) -> u64 {
    windows.iter().fold(FNV_OFFSET, window_fingerprint)
}

/// The train-split effect of applying one window to a dataset.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AppliedWindow {
    /// Train indices appended by this window's adds.
    pub added: Vec<usize>,
    /// Train indices withdrawn by this window's retractions — the
    /// entries stay in place (confidence tables and RNG streams are
    /// positional) but must be excluded from training and pinned to
    /// zero confidence.
    pub retracted: Vec<usize>,
    /// Retractions that matched no live train triple (already
    /// retracted, or never present) — counted, not fatal: a stream
    /// replayed against a drifted catalog may race its own updates.
    pub missed_retractions: usize,
}

/// Apply one delta window to a dataset's graph and train split.
///
/// Adds intern their strings (growing the graph) and append to
/// `train`; retractions mark the *last* live matching train entry. The
/// graph's triple list keeps retracted edges (ids are positional and
/// historical edges are harmless to negative sampling); `live` tracks
/// which train entries are currently trainable and must be the same
/// length as `dataset.train` (it is extended alongside).
pub fn apply_window(
    dataset: &mut Dataset,
    live: &mut Vec<bool>,
    window: &DeltaWindow,
) -> AppliedWindow {
    assert_eq!(
        live.len(),
        dataset.train.len(),
        "live mask out of sync with train split"
    );
    // Index live train entries by ids for retraction lookup.
    let mut by_ids: HashMap<(u32, u16, u32), Vec<usize>> = HashMap::new();
    for (i, t) in dataset.train.iter().enumerate() {
        if live[i] {
            by_ids
                .entry((t.product.0, t.attr.0, t.value.0))
                .or_default()
                .push(i);
        }
    }
    let mut out = AppliedWindow::default();
    for d in &window.ops {
        match d.op {
            DeltaOp::Add => {
                let t: Triple = dataset.graph.add_fact(&d.title, &d.attr, &d.value);
                let i = dataset.train.len();
                dataset.train.push(t);
                dataset.train_clean.push(true);
                live.push(true);
                by_ids
                    .entry((t.product.0, t.attr.0, t.value.0))
                    .or_default()
                    .push(i);
                out.added.push(i);
            }
            DeltaOp::Retract => {
                let p = dataset.graph.intern_product(&d.title);
                let a = dataset.graph.intern_attr(&d.attr);
                let v = dataset.graph.intern_value(&d.value);
                match by_ids.get_mut(&(p.0, a.0, v.0)).and_then(|ix| ix.pop()) {
                    Some(i) => {
                        live[i] = false;
                        out.retracted.push(i);
                    }
                    None => out.missed_retractions += 1,
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::ProductGraph;

    fn d(op: DeltaOp, t: &str, a: &str, v: &str) -> TripleDelta {
        TripleDelta {
            op,
            title: t.into(),
            attr: a.into(),
            value: v.into(),
        }
    }

    fn sample_stream() -> Vec<DeltaWindow> {
        vec![
            DeltaWindow {
                index: 0,
                ops: vec![
                    d(DeltaOp::Add, "brand9 spicy chips", "flavor", "spicy"),
                    d(DeltaOp::Retract, "brand3 cola drink", "flavor", "cola"),
                ],
            },
            DeltaWindow {
                index: 1,
                ops: vec![d(DeltaOp::Add, "brand3 cola drink", "flavor", "vanilla")],
            },
        ]
    }

    #[test]
    fn round_trips_through_text() {
        let windows = sample_stream();
        let mut buf = Vec::new();
        write_delta_stream(&windows, &mut buf).unwrap();
        let back = read_delta_stream(std::io::BufReader::new(&buf[..])).unwrap();
        assert_eq!(back, windows);
    }

    #[test]
    fn rejects_garbage_and_truncation() {
        assert!(read_delta_stream(&b""[..]).is_err());
        assert!(read_delta_stream(&b"#pge-delta v2\n"[..]).is_err());
        let bad_op = b"#pge-delta v1\n#window 0 1\nmorph\ta\tb\tc\n";
        assert!(matches!(
            read_delta_stream(&bad_op[..]),
            Err(DeltaError::Parse(3, _))
        ));
        let wrong_count = b"#pge-delta v1\n#window 0 2\nadd\ta\tb\tc\n";
        assert!(read_delta_stream(&wrong_count[..]).is_err());
        let out_of_order = b"#pge-delta v1\n#window 1 0\n";
        assert!(read_delta_stream(&out_of_order[..]).is_err());
        let orphan = b"#pge-delta v1\nadd\ta\tb\tc\n";
        assert!(read_delta_stream(&orphan[..]).is_err());
        let mut buf = Vec::new();
        let mut w = sample_stream();
        w[1].index = 5;
        assert!(write_delta_stream(&w, &mut buf).is_err());
    }

    #[test]
    fn fingerprint_tracks_prefix_and_content() {
        let windows = sample_stream();
        let fp1 = stream_fingerprint(&windows[..1]);
        let fp2 = stream_fingerprint(&windows);
        assert_ne!(fp1, fp2, "prefix length matters");
        assert_eq!(fp2, stream_fingerprint(&sample_stream()), "deterministic");
        let mut edited = sample_stream();
        edited[1].ops[0].value = "cherry".into();
        assert_ne!(fp2, stream_fingerprint(&edited), "content matters");
        let mut swapped = sample_stream();
        swapped[0].ops[0].op = DeltaOp::Retract;
        assert_ne!(fp2, stream_fingerprint(&swapped), "op kind matters");
    }

    #[test]
    fn apply_window_grows_and_retracts() {
        let mut g = ProductGraph::new();
        let t0 = g.add_fact("brand3 cola drink", "flavor", "cola");
        let t1 = g.add_fact("brand4 lime drink", "flavor", "lime");
        let mut ds = Dataset::new(g, vec![t0, t1], vec![], vec![]);
        let mut live = vec![true; ds.train.len()];
        let windows = sample_stream();

        let a0 = apply_window(&mut ds, &mut live, &windows[0]);
        assert_eq!(a0.added, vec![2], "one add appended at index 2");
        assert_eq!(a0.retracted, vec![0], "the cola fact is withdrawn");
        assert_eq!(a0.missed_retractions, 0);
        assert_eq!(ds.train.len(), 3);
        assert_eq!(live, vec![false, true, true]);

        let a1 = apply_window(&mut ds, &mut live, &windows[1]);
        assert_eq!(a1.added, vec![3]);
        assert_eq!(ds.graph.value_text(ds.train[3].value), "vanilla");
        // The same title resolves to the same interned product id.
        assert_eq!(ds.train[3].product, ds.train[0].product);

        // Retracting something already gone is counted, not fatal.
        let again = DeltaWindow {
            index: 2,
            ops: vec![d(DeltaOp::Retract, "brand3 cola drink", "flavor", "cola")],
        };
        let a2 = apply_window(&mut ds, &mut live, &again);
        assert_eq!(a2.missed_retractions, 1);
        assert!(a2.retracted.is_empty());
    }
}
