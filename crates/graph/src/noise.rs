//! Noise injection: random attribute-value substitution.
//!
//! Used in two places mirroring the paper: (a) FB15K-237-style
//! datasets get 10% corrupted triples added to training (§4.1), and
//! (b) the Fig. 5/6 experiments inject artificial noises into the
//! Amazon-style training set.

use crate::store::{ProductGraph, Triple, ValueId};
use rand::Rng;

/// Corrupt a `fraction` of `triples` by substituting their value with
/// a random *different* value from the graph.
///
/// Returns the new triple list and a parallel `clean` vector (`true`
/// for untouched triples). The corrupted triples replace the originals
/// in place (self-reported catalog errors overwrite the truth; they do
/// not coexist with it).
pub fn inject_noise<R: Rng>(
    graph: &ProductGraph,
    triples: &[Triple],
    fraction: f64,
    rng: &mut R,
) -> (Vec<Triple>, Vec<bool>) {
    assert!((0.0..=1.0).contains(&fraction), "fraction must be in [0,1]");
    let n_values = graph.num_values() as u32;
    let mut out = Vec::with_capacity(triples.len());
    let mut clean = Vec::with_capacity(triples.len());
    for t in triples {
        if n_values >= 2 && rng.gen_bool(fraction) {
            let mut v = ValueId(rng.gen_range(0..n_values));
            while v == t.value {
                v = ValueId(rng.gen_range(0..n_values));
            }
            out.push(Triple::new(t.product, t.attr, v));
            clean.push(false);
        } else {
            out.push(*t);
            clean.push(true);
        }
    }
    (out, clean)
}

/// Append `extra` corrupted copies of randomly chosen triples instead
/// of replacing them (used when the experiment wants the originals
/// retained, e.g. Fig. 5's "inject artificial noises").
pub fn append_noise<R: Rng>(
    graph: &ProductGraph,
    triples: &[Triple],
    extra: usize,
    rng: &mut R,
) -> (Vec<Triple>, Vec<bool>) {
    let n_values = graph.num_values() as u32;
    let mut out = triples.to_vec();
    let mut clean = vec![true; triples.len()];
    if triples.is_empty() || n_values < 2 {
        return (out, clean);
    }
    for _ in 0..extra {
        let t = triples[rng.gen_range(0..triples.len())];
        let mut v = ValueId(rng.gen_range(0..n_values));
        while v == t.value {
            v = ValueId(rng.gen_range(0..n_values));
        }
        out.push(Triple::new(t.product, t.attr, v));
        clean.push(false);
    }
    (out, clean)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn graph() -> ProductGraph {
        let mut g = ProductGraph::new();
        for i in 0..50 {
            g.add_fact(&format!("p{i}"), "flavor", &format!("v{}", i % 10));
        }
        g
    }

    #[test]
    fn fraction_roughly_respected() {
        let g = graph();
        let mut rng = StdRng::seed_from_u64(1);
        let (noisy, clean) = inject_noise(&g, g.triples(), 0.2, &mut rng);
        assert_eq!(noisy.len(), g.num_triples());
        let dirty = clean.iter().filter(|c| !**c).count();
        assert!((2..=20).contains(&dirty), "dirty={dirty}");
        // Corrupted triples actually changed their value.
        for ((orig, new), &c) in g.triples().iter().zip(&noisy).zip(&clean) {
            if c {
                assert_eq!(orig, new);
            } else {
                assert_eq!(orig.product, new.product);
                assert_eq!(orig.attr, new.attr);
                assert_ne!(orig.value, new.value);
            }
        }
    }

    #[test]
    fn zero_fraction_is_identity() {
        let g = graph();
        let mut rng = StdRng::seed_from_u64(2);
        let (noisy, clean) = inject_noise(&g, g.triples(), 0.0, &mut rng);
        assert_eq!(noisy, g.triples());
        assert!(clean.iter().all(|&c| c));
    }

    #[test]
    fn append_noise_keeps_originals() {
        let g = graph();
        let mut rng = StdRng::seed_from_u64(3);
        let (noisy, clean) = append_noise(&g, g.triples(), 10, &mut rng);
        assert_eq!(noisy.len(), g.num_triples() + 10);
        assert_eq!(&noisy[..g.num_triples()], g.triples());
        assert!(clean[..g.num_triples()].iter().all(|&c| c));
        assert!(clean[g.num_triples()..].iter().all(|&c| !c));
    }

    #[test]
    fn deterministic_under_seed() {
        let g = graph();
        let a = inject_noise(&g, g.triples(), 0.3, &mut StdRng::seed_from_u64(7));
        let b = inject_noise(&g, g.triples(), 0.3, &mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
    }
}
