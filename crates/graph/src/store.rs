//! The interned triple store.

use pge_tensor::FxHashMap;

/// Index of a product (identified by its title text) in a
/// [`ProductGraph`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProductId(pub u32);

/// Index of an attribute (relation) in a [`ProductGraph`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AttrId(pub u16);

/// Index of an attribute value (free text) in a [`ProductGraph`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ValueId(pub u32);

/// One attribute triple `(t, a, v)` (Definition 1 of the paper).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Triple {
    pub product: ProductId,
    pub attr: AttrId,
    pub value: ValueId,
}

impl Triple {
    pub fn new(product: ProductId, attr: AttrId, value: ValueId) -> Self {
        Triple {
            product,
            attr,
            value,
        }
    }
}

/// A product graph `G = {T, A, V, O}` with all strings interned.
///
/// Titles and values keep their raw text because the PGE model (and
/// the NLP baselines) consume text, while id-based KGE baselines use
/// the interned ids directly — exactly the contrast the paper draws.
#[derive(Clone, Debug, Default)]
pub struct ProductGraph {
    titles: Vec<String>,
    attributes: Vec<String>,
    values: Vec<String>,
    title_index: FxHashMap<String, ProductId>,
    attr_index: FxHashMap<String, AttrId>,
    value_index: FxHashMap<String, ValueId>,
    triples: Vec<Triple>,
}

impl ProductGraph {
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern a product title; returns the stable id.
    pub fn intern_product(&mut self, title: &str) -> ProductId {
        if let Some(&id) = self.title_index.get(title) {
            return id;
        }
        let id = ProductId(self.titles.len() as u32);
        self.titles.push(title.to_string());
        self.title_index.insert(title.to_string(), id);
        id
    }

    /// Intern an attribute name.
    pub fn intern_attr(&mut self, name: &str) -> AttrId {
        if let Some(&id) = self.attr_index.get(name) {
            return id;
        }
        let id = AttrId(self.attributes.len() as u16);
        self.attributes.push(name.to_string());
        self.attr_index.insert(name.to_string(), id);
        id
    }

    /// Intern an attribute-value string.
    pub fn intern_value(&mut self, value: &str) -> ValueId {
        if let Some(&id) = self.value_index.get(value) {
            return id;
        }
        let id = ValueId(self.values.len() as u32);
        self.values.push(value.to_string());
        self.value_index.insert(value.to_string(), id);
        id
    }

    /// Record an observed triple (interns nothing; ids must exist).
    pub fn add_triple(&mut self, t: Triple) {
        debug_assert!((t.product.0 as usize) < self.titles.len());
        debug_assert!((t.attr.0 as usize) < self.attributes.len());
        debug_assert!((t.value.0 as usize) < self.values.len());
        self.triples.push(t);
    }

    /// Intern all three components and record the triple.
    pub fn add_fact(&mut self, title: &str, attr: &str, value: &str) -> Triple {
        let t = Triple::new(
            self.intern_product(title),
            self.intern_attr(attr),
            self.intern_value(value),
        );
        self.add_triple(t);
        t
    }

    #[inline]
    pub fn num_products(&self) -> usize {
        self.titles.len()
    }

    #[inline]
    pub fn num_attrs(&self) -> usize {
        self.attributes.len()
    }

    #[inline]
    pub fn num_values(&self) -> usize {
        self.values.len()
    }

    /// Entities in the KG sense: products + values.
    #[inline]
    pub fn num_entities(&self) -> usize {
        self.num_products() + self.num_values()
    }

    #[inline]
    pub fn num_triples(&self) -> usize {
        self.triples.len()
    }

    #[inline]
    pub fn triples(&self) -> &[Triple] {
        &self.triples
    }

    #[inline]
    pub fn title(&self, id: ProductId) -> &str {
        &self.titles[id.0 as usize]
    }

    #[inline]
    pub fn attr_name(&self, id: AttrId) -> &str {
        &self.attributes[id.0 as usize]
    }

    #[inline]
    pub fn value_text(&self, id: ValueId) -> &str {
        &self.values[id.0 as usize]
    }

    pub fn lookup_product(&self, title: &str) -> Option<ProductId> {
        self.title_index.get(title).copied()
    }

    pub fn lookup_attr(&self, name: &str) -> Option<AttrId> {
        self.attr_index.get(name).copied()
    }

    pub fn lookup_value(&self, value: &str) -> Option<ValueId> {
        self.value_index.get(value).copied()
    }

    /// All value ids observed per attribute (indexed by `AttrId`),
    /// deduplicated in first-seen order. Used by per-attribute
    /// negative sampling and the OpenTag-lite lexicon.
    pub fn values_by_attr(&self) -> Vec<Vec<ValueId>> {
        let mut seen: Vec<pge_tensor::FxHashSet<ValueId>> =
            vec![Default::default(); self.num_attrs()];
        let mut out: Vec<Vec<ValueId>> = vec![Vec::new(); self.num_attrs()];
        for t in &self.triples {
            if seen[t.attr.0 as usize].insert(t.value) {
                out[t.attr.0 as usize].push(t.value);
            }
        }
        out
    }

    /// Triple indices grouped by product (indexed by `ProductId`).
    pub fn triples_by_product(&self) -> Vec<Vec<usize>> {
        let mut out: Vec<Vec<usize>> = vec![Vec::new(); self.num_products()];
        for (i, t) in self.triples.iter().enumerate() {
            out[t.product.0 as usize].push(i);
        }
        out
    }

    /// Triple indices grouped by value (indexed by `ValueId`).
    pub fn triples_by_value(&self) -> Vec<Vec<usize>> {
        let mut out: Vec<Vec<usize>> = vec![Vec::new(); self.num_values()];
        for (i, t) in self.triples.iter().enumerate() {
            out[t.value.0 as usize].push(i);
        }
        out
    }

    /// `(attr, value)` observation counts — the empirical prior used
    /// by the CKRL-style baseline.
    pub fn attr_value_counts(&self) -> FxHashMap<(AttrId, ValueId), u32> {
        let mut m: FxHashMap<(AttrId, ValueId), u32> = FxHashMap::default();
        for t in &self.triples {
            *m.entry((t.attr, t.value)).or_insert(0) += 1;
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ProductGraph {
        let mut g = ProductGraph::new();
        g.add_fact("tortilla chips spicy queso", "flavor", "spicy queso");
        g.add_fact(
            "tortilla chips spicy queso",
            "ingredient",
            "chipotle pepper",
        );
        g.add_fact("bean chips spicy", "flavor", "spicy");
        g.add_fact("bean chips spicy", "ingredient", "chipotle pepper");
        g
    }

    #[test]
    fn interning_is_stable() {
        let mut g = ProductGraph::new();
        let a = g.intern_product("x");
        let b = g.intern_product("x");
        let c = g.intern_product("y");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(g.title(a), "x");
    }

    #[test]
    fn counts() {
        let g = sample();
        assert_eq!(g.num_products(), 2);
        assert_eq!(g.num_attrs(), 2);
        assert_eq!(g.num_values(), 3);
        assert_eq!(g.num_entities(), 5);
        assert_eq!(g.num_triples(), 4);
    }

    #[test]
    fn lookup_round_trip() {
        let g = sample();
        let p = g.lookup_product("bean chips spicy").unwrap();
        assert_eq!(g.title(p), "bean chips spicy");
        let v = g.lookup_value("chipotle pepper").unwrap();
        assert_eq!(g.value_text(v), "chipotle pepper");
        assert!(g.lookup_attr("scent").is_none());
    }

    #[test]
    fn values_by_attr_groups_and_dedups() {
        let g = sample();
        let flavor = g.lookup_attr("flavor").unwrap();
        let ingr = g.lookup_attr("ingredient").unwrap();
        let by_attr = g.values_by_attr();
        assert_eq!(by_attr[flavor.0 as usize].len(), 2);
        // "chipotle pepper" appears twice but is listed once.
        assert_eq!(by_attr[ingr.0 as usize].len(), 1);
    }

    #[test]
    fn adjacency_indices() {
        let g = sample();
        let by_p = g.triples_by_product();
        assert_eq!(by_p.len(), 2);
        assert_eq!(by_p[0], vec![0, 1]);
        let by_v = g.triples_by_value();
        let pepper = g.lookup_value("chipotle pepper").unwrap();
        assert_eq!(by_v[pepper.0 as usize], vec![1, 3]);
    }

    #[test]
    fn attr_value_counts_counts_duplicates() {
        let g = sample();
        let ingr = g.lookup_attr("ingredient").unwrap();
        let pepper = g.lookup_value("chipotle pepper").unwrap();
        let m = g.attr_value_counts();
        assert_eq!(m[&(ingr, pepper)], 2);
    }
}
