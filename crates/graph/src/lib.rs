//! Product-graph storage and workload machinery.
//!
//! A product graph (Definition 2 of the paper) is
//! `G = {T, A, V, O}`: product titles, attributes, attribute values,
//! and observed `(t, a, v)` triples, where titles and values are free
//! text. This crate provides:
//!
//! * [`store`] — the interned triple store ([`store::ProductGraph`]);
//! * [`dataset`] — labeled train/valid/test splits
//!   ([`dataset::Dataset`]), plus the transductive → inductive
//!   filtering used in §4.4 of the paper;
//! * [`sampler`] — negative sampling by value corruption;
//! * [`noise`] — noise injection (random value substitution, §4.1 and
//!   §4.5);
//! * [`tsv`] — a small text serialization so generated datasets can be
//!   persisted and diffed;
//! * [`delta`] — the streaming add/retract delta format that feeds
//!   `pge train --incremental`, with window fingerprints for exact
//!   resume.

pub mod dataset;
pub mod delta;
pub mod noise;
pub mod sampler;
pub mod stats;
pub mod store;
pub mod tsv;

pub use dataset::{Dataset, LabeledTriple, Split};
pub use delta::{
    apply_window, read_delta_stream, stream_fingerprint, write_delta_stream, AppliedWindow,
    DeltaError, DeltaOp, DeltaWindow, TripleDelta,
};
pub use noise::inject_noise;
pub use sampler::{NegativeSampler, SamplingMode};
pub use stats::{graph_stats, GraphStats};
pub use store::{AttrId, ProductGraph, ProductId, Triple, ValueId};
pub use tsv::{write_raw_triples, RawTriple, RawTripleError, RawTripleReader};
