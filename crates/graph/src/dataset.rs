//! Labeled train/valid/test splits over a product graph.

use crate::store::{ProductGraph, Triple};
use pge_tensor::FxHashSet;

/// A triple with a correctness label (ground truth from the
/// generator's error injection; in the paper, from MTurk annotation).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LabeledTriple {
    pub triple: Triple,
    /// `true` iff the attribute value correctly describes the product.
    pub correct: bool,
}

/// Which evaluation regime a dataset is prepared for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Split {
    /// Test values/products were all observed during training (§4.3).
    Transductive,
    /// Training excludes every triple sharing an entity with the test
    /// set (§4.4).
    Inductive,
}

/// A complete experimental dataset: the graph, an (unlabeled, possibly
/// noisy) training set, and labeled validation/test sets.
#[derive(Clone, Debug)]
pub struct Dataset {
    pub graph: ProductGraph,
    /// Observed triples used for embedding training. May contain
    /// injected noise; `train_clean` records the generator's ground
    /// truth about it (parallel to `train`), which models must NOT
    /// read — it exists for the Fig. 5 confidence-score analysis.
    pub train: Vec<Triple>,
    pub train_clean: Vec<bool>,
    pub valid: Vec<LabeledTriple>,
    pub test: Vec<LabeledTriple>,
    pub split: Split,
}

impl Dataset {
    /// Assemble a transductive dataset; `train_clean` defaults to
    /// all-clean.
    pub fn new(
        graph: ProductGraph,
        train: Vec<Triple>,
        valid: Vec<LabeledTriple>,
        test: Vec<LabeledTriple>,
    ) -> Self {
        let n = train.len();
        Dataset {
            graph,
            train,
            train_clean: vec![true; n],
            valid,
            test,
            split: Split::Transductive,
        }
    }

    /// Summary counts in the shape of the paper's Table 2.
    pub fn stats(&self) -> DatasetStats {
        DatasetStats {
            relations: self.graph.num_attrs(),
            entities: self.graph.num_entities(),
            products: self.graph.num_products(),
            values: self.graph.num_values(),
            train: self.train.len(),
            valid: self.valid.len(),
            test: self.test.len(),
        }
    }

    /// Derive the inductive variant (§4.4): drop every training triple
    /// that shares a product or a value with some test triple, so the
    /// training and testing entity sets are disjoint.
    pub fn to_inductive(&self) -> Dataset {
        let mut test_products = FxHashSet::default();
        let mut test_values = FxHashSet::default();
        for lt in &self.test {
            test_products.insert(lt.triple.product);
            test_values.insert(lt.triple.value);
        }
        let mut train = Vec::new();
        let mut train_clean = Vec::new();
        for (t, &clean) in self.train.iter().zip(&self.train_clean) {
            if !test_products.contains(&t.product) && !test_values.contains(&t.value) {
                train.push(*t);
                train_clean.push(clean);
            }
        }
        Dataset {
            graph: self.graph.clone(),
            train,
            train_clean,
            valid: self.valid.clone(),
            test: self.test.clone(),
            split: Split::Inductive,
        }
    }

    /// Keep only the first `ratio` fraction of training triples (the
    /// paper's Table 5 scalability sweep).
    pub fn sample_train(&self, ratio: f64) -> Dataset {
        assert!((0.0..=1.0).contains(&ratio), "ratio must be in [0,1]");
        let keep = ((self.train.len() as f64) * ratio).round() as usize;
        let mut d = self.clone();
        d.train.truncate(keep);
        d.train_clean.truncate(keep);
        d
    }

    /// Check the inductive invariant: no train/test entity overlap.
    pub fn is_entity_disjoint(&self) -> bool {
        let mut test_products = FxHashSet::default();
        let mut test_values = FxHashSet::default();
        for lt in &self.test {
            test_products.insert(lt.triple.product);
            test_values.insert(lt.triple.value);
        }
        self.train
            .iter()
            .all(|t| !test_products.contains(&t.product) && !test_values.contains(&t.value))
    }
}

/// Counts for the paper's Table 2.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DatasetStats {
    pub relations: usize,
    pub entities: usize,
    pub products: usize,
    pub values: usize,
    pub train: usize,
    pub valid: usize,
    pub test: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{AttrId, ProductId, ValueId};

    fn tiny() -> Dataset {
        let mut g = ProductGraph::new();
        let facts = [
            ("p0", "flavor", "v0"),
            ("p1", "flavor", "v1"),
            ("p2", "flavor", "v0"),
            ("p3", "flavor", "v3"),
        ];
        let triples: Vec<Triple> = facts.iter().map(|(t, a, v)| g.add_fact(t, a, v)).collect();
        let test = vec![
            LabeledTriple {
                triple: triples[3],
                correct: true,
            },
            LabeledTriple {
                triple: Triple::new(ProductId(0), AttrId(0), ValueId(1)),
                correct: false,
            },
        ];
        Dataset::new(g, triples.clone(), vec![], test)
    }

    #[test]
    fn stats_shape() {
        let d = tiny();
        let s = d.stats();
        assert_eq!(s.relations, 1);
        assert_eq!(s.products, 4);
        assert_eq!(s.values, 3);
        assert_eq!(s.entities, 7);
        assert_eq!(s.train, 4);
        assert_eq!(s.test, 2);
    }

    #[test]
    fn inductive_removes_shared_entities() {
        let d = tiny();
        assert!(!d.is_entity_disjoint());
        let ind = d.to_inductive();
        assert_eq!(ind.split, Split::Inductive);
        assert!(ind.is_entity_disjoint());
        // Test entities: products {p3, p0}, values {v3, v1}. Training
        // triples touching any of them are dropped: p0–v0 (product),
        // p1–v1 (value), p3–v3 (both). Only p2–v0 survives.
        assert_eq!(ind.train.len(), 1);
        assert_eq!(ind.train[0].product, ProductId(2));
        assert_eq!(ind.train[0].value, ValueId(0));
    }

    #[test]
    fn sample_train_ratio() {
        let d = tiny();
        assert_eq!(d.sample_train(0.5).train.len(), 2);
        assert_eq!(d.sample_train(1.0).train.len(), 4);
        assert_eq!(d.sample_train(0.0).train.len(), 0);
        // clean flags stay parallel
        let s = d.sample_train(0.5);
        assert_eq!(s.train.len(), s.train_clean.len());
    }

    #[test]
    #[should_panic(expected = "ratio")]
    fn sample_train_rejects_bad_ratio() {
        tiny().sample_train(1.5);
    }
}
