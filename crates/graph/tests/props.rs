//! Property-based tests for the graph substrate.

use pge_graph::{
    inject_noise, Dataset, LabeledTriple, NegativeSampler, ProductGraph, SamplingMode, Triple,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A random small graph: `n` products each with 1–3 facts over a few
/// attributes/values.
fn arb_graph() -> impl Strategy<Value = ProductGraph> {
    (2usize..30, 2usize..12, 1usize..4).prop_map(|(products, values, attrs)| {
        let mut g = ProductGraph::new();
        for p in 0..products {
            for a in 0..attrs {
                g.add_fact(
                    &format!("product {p}"),
                    &format!("attr{a}"),
                    &format!("value {}", (p * 7 + a * 3) % values),
                );
            }
        }
        g
    })
}

proptest! {
    #[test]
    fn sampler_never_returns_true_value(g in arb_graph(), seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed);
        for mode in [SamplingMode::GlobalUniform, SamplingMode::PerAttribute] {
            let s = NegativeSampler::new(&g, mode);
            for t in g.triples().iter().take(10) {
                if let Some(v) = s.sample_one(&mut rng, t) {
                    prop_assert_ne!(v, t.value);
                    prop_assert!((v.0 as usize) < g.num_values());
                }
            }
        }
    }

    #[test]
    fn inject_noise_preserves_length_and_flags(
        g in arb_graph(),
        frac in 0.0f64..1.0,
        seed in 0u64..500,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (noisy, clean) = inject_noise(&g, g.triples(), frac, &mut rng);
        prop_assert_eq!(noisy.len(), g.num_triples());
        prop_assert_eq!(clean.len(), g.num_triples());
        for ((orig, new), &is_clean) in g.triples().iter().zip(&noisy).zip(&clean) {
            if is_clean {
                prop_assert_eq!(orig, new);
            } else {
                prop_assert_eq!(orig.product, new.product);
                prop_assert_eq!(orig.attr, new.attr);
                prop_assert_ne!(orig.value, new.value);
            }
        }
    }

    #[test]
    fn to_inductive_is_always_disjoint(g in arb_graph(), take in 1usize..8) {
        let triples = g.triples().to_vec();
        prop_assume!(triples.len() > take);
        let test: Vec<LabeledTriple> = triples[..take]
            .iter()
            .map(|&t| LabeledTriple { triple: t, correct: true })
            .collect();
        let train = triples[take..].to_vec();
        let d = Dataset::new(g, train, vec![], test);
        let ind = d.to_inductive();
        prop_assert!(ind.is_entity_disjoint());
        // Inductive training is a subset of the original.
        prop_assert!(ind.train.len() <= d.train.len());
    }

    #[test]
    fn tsv_round_trip_arbitrary_small_dataset(g in arb_graph(), seed in 0u64..100) {
        let mut rng = StdRng::seed_from_u64(seed);
        let triples = g.triples().to_vec();
        let (train, clean) = inject_noise(&g, &triples, 0.2, &mut rng);
        let mut d = Dataset::new(g, train, vec![], vec![]);
        d.train_clean = clean;
        let text = pge_graph::tsv::to_tsv(&d).unwrap();
        let back = pge_graph::tsv::from_tsv(&text).unwrap();
        prop_assert_eq!(back.train, d.train);
        prop_assert_eq!(back.train_clean, d.train_clean);
        prop_assert_eq!(back.graph.triples(), d.graph.triples());
    }

    #[test]
    fn interning_is_injective(names in prop::collection::hash_set("[a-z ]{1,12}", 1..20)) {
        let mut g = ProductGraph::new();
        let ids: Vec<_> = names.iter().map(|n| g.intern_product(n)).collect();
        let distinct: std::collections::HashSet<_> = ids.iter().collect();
        prop_assert_eq!(distinct.len(), names.len());
        for (n, id) in names.iter().zip(&ids) {
            prop_assert_eq!(g.title(*id), n.as_str());
        }
    }

    #[test]
    fn sample_train_monotone(g in arb_graph(), r1 in 0.0f64..1.0, r2 in 0.0f64..1.0) {
        let triples = g.triples().to_vec();
        let d = Dataset::new(g, triples, vec![], vec![]);
        let (lo, hi) = if r1 <= r2 { (r1, r2) } else { (r2, r1) };
        prop_assert!(d.sample_train(lo).train.len() <= d.sample_train(hi).train.len());
        prop_assert_eq!(d.sample_train(1.0).train.len(), d.train.len());
    }
}

// Keep Triple imported for readability of strategies above.
#[allow(dead_code)]
fn _use(_: Triple) {}
