//! Out-of-core scans: PGECAT01 catalog input and mmap-backed model
//! snapshots.
//!
//! * a binary catalog scan produces byte-identical shards to a TSV
//!   scan of the same triples — the input format never leaks into the
//!   scored output;
//! * the scan CRC matrix gains a `--mmap` axis: shard + quarantine
//!   bytes are identical whether the model is the in-memory trained
//!   one, a PGEBIN02 snapshot served off a mapping, or the same
//!   snapshot copied to the heap — with the precomputed embedding
//!   bank active on the snapshot paths;
//! * a scan killed under a mapped model and resumed under a heap copy
//!   (and vice versa) still reproduces the uninterrupted output byte
//!   for byte.

use pge_core::{load_model_store, train_pge, write_model_sections, PgeConfig, PgeModel};
use pge_datagen::{generate_catalog, stream_catalog, CatalogConfig};
use pge_graph::Dataset;
use pge_scan::{scan, shard_file_name, Manifest, ScanConfig, QUARANTINE_FILE};
use pge_store::{BankBuilder, CatalogReader, CatalogWriter, MmapMode, SnapshotWriter};
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::OnceLock;

struct World {
    dataset: Dataset,
    model: PgeModel,
    /// PGECAT01 blob of a small streamed catalog.
    catalog: PathBuf,
    /// The same records as raw TSV lines.
    tsv: PathBuf,
    /// PGEBIN02 snapshot: model params + an embedding bank covering
    /// every distinct catalog title and value.
    snapshot: PathBuf,
}

fn temp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pge-scan-ooc-{}", std::process::id()));
    fs::create_dir_all(&dir).expect("create temp dir");
    dir.join(name)
}

fn world() -> &'static World {
    static WORLD: OnceLock<World> = OnceLock::new();
    WORLD.get_or_init(|| {
        let cfg = CatalogConfig {
            products: 80,
            labeled: 20,
            seed: 23,
            ..CatalogConfig::tiny()
        };
        let dataset = generate_catalog(&cfg);
        let model = train_pge(
            &dataset,
            &PgeConfig {
                epochs: 1,
                ..PgeConfig::tiny()
            },
        )
        .model;

        // Stream a sibling catalog (same lexicon, so every attribute
        // is known to the model) to a PGECAT01 blob.
        let catalog = temp_path("input.catalog.bin");
        let mut w = CatalogWriter::create(&catalog, 29).expect("create catalog");
        let stream_cfg = CatalogConfig {
            products: 60,
            seed: 29,
            ..CatalogConfig::tiny()
        };
        stream_catalog(&stream_cfg, &mut w).expect("stream catalog");
        w.finish().expect("finish catalog");

        // Mirror the records as TSV, and collect bank keys.
        let tsv = temp_path("input.tsv");
        let reader = CatalogReader::open(&catalog).expect("reopen catalog");
        let mut bank = BankBuilder::new();
        {
            let mut out = std::io::BufWriter::new(fs::File::create(&tsv).expect("create tsv"));
            for rec in reader.records().expect("records") {
                let rec = rec.expect("valid record");
                writeln!(out, "{}\t{}\t{}", rec.title, rec.attr, rec.value).unwrap();
                bank.add(&rec.title);
                bank.add(&rec.value);
            }
        }
        assert!(bank.len() > 60, "bank must cover titles and values");

        // Model + bank in one PGEBIN02 snapshot, rows being the exact
        // bit patterns the encoder produces.
        let snapshot = temp_path("model.pgebin2");
        let mut sw = SnapshotWriter::create(&snapshot).expect("create snapshot");
        write_model_sections(&model, &mut sw).expect("model sections");
        bank.write_sections(&mut sw, model.dim(), |key, row| {
            row.extend_from_slice(&model.embed_text_uncached(key));
        })
        .expect("bank sections");
        sw.finish().expect("finish snapshot");

        World {
            dataset,
            model,
            catalog,
            tsv,
            snapshot,
        }
    })
}

fn full_output(out_dir: &Path) -> (Vec<u8>, Vec<u8>) {
    let manifest = Manifest::load(out_dir).unwrap().expect("manifest exists");
    let mut shards = Vec::new();
    for (i, s) in manifest.shards.iter().enumerate() {
        assert_eq!(s.file, shard_file_name(i));
        shards.extend_from_slice(&fs::read(out_dir.join(&s.file)).unwrap());
    }
    let quarantine = fs::read(out_dir.join(QUARANTINE_FILE)).unwrap_or_default();
    (shards, quarantine)
}

fn run_scan(model: &PgeModel, input: &Path, dir: &Path, jobs: usize) -> (Vec<u8>, Vec<u8>) {
    let mut c = ScanConfig::new(dir);
    c.jobs = jobs;
    c.chunk_size = 16;
    c.shard_chunks = 2;
    let outcome = scan(model, 0.0, input, &c).unwrap();
    assert!(outcome.done);
    assert_eq!(
        outcome.quarantined, 0,
        "catalog rows must all score (known attributes)"
    );
    let out = full_output(dir);
    fs::remove_dir_all(dir).unwrap();
    out
}

/// The input format never leaks into the scored output: a PGECAT01
/// scan and a TSV scan of the same records commit identical shard
/// bytes.
#[test]
fn catalog_scan_matches_tsv_scan() {
    let w = world();
    let from_catalog = run_scan(&w.model, &w.catalog, &temp_path("fmt-cat"), 2);
    let from_tsv = run_scan(&w.model, &w.tsv, &temp_path("fmt-tsv"), 2);
    assert!(!from_catalog.0.is_empty());
    assert_eq!(from_catalog, from_tsv);
}

/// The CRC matrix's `--mmap` axis: backing ∈ {in-memory trained,
/// mapped snapshot, heap snapshot} × jobs ∈ {1, 4} all commit
/// identical bytes. The snapshot backings serve title/value vectors
/// from the precomputed embedding bank; bank rows are the encoder's
/// exact bit patterns, so even the bank-vs-encoder flip is invisible
/// in the output.
#[test]
fn output_identical_across_mmap_axis() {
    let w = world();
    let mapped = load_model_store(&w.snapshot, &w.dataset.graph, MmapMode::On, u64::MAX).unwrap();
    let heap = load_model_store(&w.snapshot, &w.dataset.graph, MmapMode::Off, u64::MAX).unwrap();
    assert!(mapped.bank().is_some_and(|b| b.is_mapped()));
    assert!(heap.bank().is_some_and(|b| !b.is_mapped()));

    let mut baseline: Option<(Vec<u8>, Vec<u8>)> = None;
    for (name, model) in [
        ("inmem", &w.model),
        ("mmap-on", &mapped),
        ("mmap-off", &heap),
    ] {
        for jobs in [1usize, 4] {
            let dir = temp_path(&format!("axis-{name}-j{jobs}"));
            let out = run_scan(model, &w.catalog, &dir, jobs);
            match &baseline {
                None => baseline = Some(out),
                Some(base) => {
                    assert_eq!(&out, base, "backing={name} jobs={jobs} diverged")
                }
            }
        }
    }
    // The mapped scan actually used the bank.
    let (hits, _) = mapped.bank().unwrap().hit_stats();
    assert!(hits > 0, "mapped scan should hit the embedding bank");
}

/// Kill + resume across a backing flip: the first shard committed
/// under a mapped model, the rest under a heap copy (and the reverse)
/// — byte-identical to an uninterrupted scan either way.
#[test]
fn resume_across_backing_flip_is_byte_identical() {
    let w = world();
    let graph = &w.dataset.graph;
    let baseline = run_scan(&w.model, &w.catalog, &temp_path("flip-base"), 2);

    for (first_mode, second_mode) in [(MmapMode::On, MmapMode::Off), (MmapMode::Off, MmapMode::On)]
    {
        let dir = temp_path(&format!("flip-{first_mode:?}-{second_mode:?}"));
        let first_model = load_model_store(&w.snapshot, graph, first_mode, u64::MAX).unwrap();
        let mut c = ScanConfig::new(&dir);
        c.jobs = 2;
        c.chunk_size = 16;
        c.shard_chunks = 2;
        c.max_shards = Some(1);
        let first = scan(&first_model, 0.0, &w.catalog, &c).unwrap();
        assert!(!first.done, "max_shards=1 must stop early");
        drop(first_model);

        let second_model = load_model_store(&w.snapshot, graph, second_mode, u64::MAX).unwrap();
        let mut c = ScanConfig::new(&dir);
        c.jobs = 4;
        c.chunk_size = 16;
        c.shard_chunks = 2;
        c.resume = true;
        let second = scan(&second_model, 0.0, &w.catalog, &c).unwrap();
        assert!(second.done);
        assert!(second.resumed_rows > 0);
        assert_eq!(
            full_output(&dir),
            baseline,
            "kill under {first_mode:?} + resume under {second_mode:?} diverged"
        );
        fs::remove_dir_all(&dir).unwrap();
    }
}
