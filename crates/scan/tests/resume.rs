//! The scan pipeline's headline guarantees, end to end:
//!
//! * a scan killed after `k` committed shards, resumed, produces
//!   output **byte-identical** to a run that was never interrupted —
//!   including the quarantine file;
//! * the worker count never changes the output (`jobs 1` == `jobs 8`);
//! * malformed input lines land in the quarantine with their line
//!   numbers, and on-disk corruption is detected at resume, not
//!   silently propagated.

use pge_core::{train_pge, PgeConfig, PgeModel};
use pge_datagen::{generate_catalog, CatalogConfig};
use pge_graph::{write_raw_triples, Dataset};
use pge_scan::{scan, shard_file_name, Manifest, ScanConfig, ScanError, QUARANTINE_FILE};
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::OnceLock;

/// One trained world shared by every test in this binary: training
/// even a tiny model dominates test time, so do it once.
struct World {
    dataset: Dataset,
    model: PgeModel,
    /// Raw `title \t attr \t value` dump of the whole graph.
    input: PathBuf,
}

fn world() -> &'static World {
    static WORLD: OnceLock<World> = OnceLock::new();
    WORLD.get_or_init(|| {
        let dataset = generate_catalog(&CatalogConfig {
            products: 80,
            labeled: 20,
            seed: 11,
            ..CatalogConfig::tiny()
        });
        let model = train_pge(
            &dataset,
            &PgeConfig {
                epochs: 1,
                ..PgeConfig::tiny()
            },
        )
        .model;
        let input = temp_path("input.tsv");
        let file = fs::File::create(&input).expect("create input");
        let n = write_raw_triples(&dataset, std::io::BufWriter::new(file)).expect("dump triples");
        assert!(n > 200, "need a few hundred rows to span many shards");
        World {
            dataset,
            model,
            input,
        }
    })
}

fn temp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pge-scan-it-{}", std::process::id()));
    fs::create_dir_all(&dir).expect("create temp dir");
    dir.join(name)
}

fn cfg(out: &Path) -> ScanConfig {
    let mut c = ScanConfig::new(out);
    c.jobs = 2;
    c.chunk_size = 32;
    c.shard_chunks = 2;
    c
}

const THRESHOLD: f32 = 0.0;

/// Concatenated contents of every committed shard, in order, plus the
/// quarantine — the scan's full observable output.
fn full_output(out_dir: &Path) -> (Vec<u8>, Vec<u8>) {
    let manifest = Manifest::load(out_dir).unwrap().expect("manifest exists");
    let mut shards = Vec::new();
    for (i, s) in manifest.shards.iter().enumerate() {
        assert_eq!(s.file, shard_file_name(i));
        shards.extend_from_slice(&fs::read(out_dir.join(&s.file)).unwrap());
    }
    let quarantine = fs::read(out_dir.join(QUARANTINE_FILE)).unwrap_or_default();
    (shards, quarantine)
}

fn scan_full(out: &Path, jobs: usize) -> (Vec<u8>, Vec<u8>) {
    let w = world();
    let mut c = cfg(out);
    c.jobs = jobs;
    let outcome = scan(&w.model, THRESHOLD, &w.input, &c).unwrap();
    assert!(outcome.done);
    assert!(outcome.shards_total >= 4, "want several shards to compare");
    full_output(out)
}

#[test]
fn interrupted_scan_resumes_byte_identical() {
    let w = world();
    let baseline_dir = temp_path("baseline");
    let baseline = scan_full(&baseline_dir, 2);

    for k in [1u64, 3] {
        let dir = temp_path(&format!("killed-after-{k}"));
        let mut c = cfg(&dir);
        c.max_shards = Some(k);
        c.jobs = 8;
        let first = scan(&w.model, THRESHOLD, &w.input, &c).unwrap();
        assert!(!first.done, "max_shards must stop the scan early");
        assert_eq!(first.shards_committed, k);

        // Resume with a different worker count: the output may not
        // depend on either the interruption or the jobs knob.
        let mut c = cfg(&dir);
        c.resume = true;
        c.jobs = 1;
        let second = scan(&w.model, THRESHOLD, &w.input, &c).unwrap();
        assert!(second.done);
        assert_eq!(second.resumed_rows, first.rows_scanned);
        assert_eq!(
            full_output(&dir),
            baseline,
            "kill after {k} shards + resume diverged from the uninterrupted run"
        );
        fs::remove_dir_all(&dir).unwrap();
    }
}

#[test]
fn worker_count_does_not_change_output() {
    let a = scan_full(&temp_path("jobs-1"), 1);
    let b = scan_full(&temp_path("jobs-8"), 8);
    assert_eq!(a, b, "jobs 1 and jobs 8 must agree byte-for-byte");
}

#[test]
fn resuming_a_finished_scan_is_a_cheap_noop() {
    let w = world();
    let dir = temp_path("noop");
    let outcome = scan(&w.model, THRESHOLD, &w.input, &cfg(&dir)).unwrap();
    let mut c = cfg(&dir);
    c.resume = true;
    let again = scan(&w.model, THRESHOLD, &w.input, &c).unwrap();
    assert!(again.done);
    assert_eq!(again.rows_scanned, 0, "no rows rescanned");
    assert_eq!(again.rows_total, outcome.rows_total);
    assert_eq!(again.resumed_rows, outcome.rows_total);
}

#[test]
fn uncheckpointed_quarantine_tail_and_tmp_files_are_dropped_on_resume() {
    let w = world();
    let baseline = scan_full(&temp_path("tail-baseline"), 2);

    let dir = temp_path("tail-killed");
    let mut c = cfg(&dir);
    c.max_shards = Some(2);
    scan(&w.model, THRESHOLD, &w.input, &c).unwrap();
    // Simulate a kill mid-write: a partial shard temp file and a
    // quarantine tail that no checkpoint covers.
    fs::write(dir.join("shard-9999.tsv.tmp"), b"partial garbage").unwrap();
    let mut q = fs::OpenOptions::new()
        .append(true)
        .create(true)
        .open(dir.join(QUARANTINE_FILE))
        .unwrap();
    use std::io::Write as _;
    q.write_all(b"999\t0\ttorn write\tgarbage\n").unwrap();
    drop(q);

    let mut c = cfg(&dir);
    c.resume = true;
    scan(&w.model, THRESHOLD, &w.input, &c).unwrap();
    assert_eq!(full_output(&dir), baseline, "stale tail must be truncated");
    assert!(!dir.join("shard-9999.tsv.tmp").exists(), "tmp cleaned up");
}

#[test]
fn malformed_and_unknown_lines_are_quarantined_with_positions() {
    let w = world();
    // Three good rows with a parse error and an unknown attribute
    // interleaved.
    let t = w.dataset.train[0];
    let attr = w.dataset.graph.attr_name(t.attr);
    let value = w.dataset.graph.value_text(t.value);
    let title = w.dataset.graph.title(t.product);
    let good = format!("{title}\t{attr}\t{value}\n");
    let input = temp_path("mixed.tsv");
    let text = format!("{good}only two\tfields\n{good}{title}\tno-such-attribute\t{value}\n{good}");
    fs::write(&input, &text).unwrap();

    let dir = temp_path("mixed-out");
    let outcome = scan(&w.model, THRESHOLD, &input, &cfg(&dir)).unwrap();
    assert_eq!(outcome.rows_scanned, 3);
    assert_eq!(outcome.quarantined, 2);

    let quarantine = fs::read_to_string(dir.join(QUARANTINE_FILE)).unwrap();
    let lines: Vec<&str> = quarantine.lines().collect();
    assert_eq!(lines.len(), 2);
    // Quarantine is ordered by input line and records line numbers.
    assert!(
        lines[0].starts_with("2\t"),
        "parse error on line 2: {quarantine}"
    );
    assert!(lines[0].contains("expected 3"), "{quarantine}");
    assert!(
        lines[1].starts_with("4\t"),
        "unknown attr on line 4: {quarantine}"
    );
    assert!(lines[1].contains("unknown attribute"), "{quarantine}");
}

#[test]
fn resume_with_different_knobs_or_input_is_rejected() {
    let w = world();
    let dir = temp_path("mismatch");
    let mut c = cfg(&dir);
    c.max_shards = Some(1);
    scan(&w.model, THRESHOLD, &w.input, &c).unwrap();

    // No --resume against a checkpointed directory.
    let e = scan(&w.model, THRESHOLD, &w.input, &cfg(&dir)).unwrap_err();
    assert!(matches!(e, ScanError::Mismatch(_)), "{e}");

    // Different chunk size.
    let mut c = cfg(&dir);
    c.resume = true;
    c.chunk_size = 64;
    let e = scan(&w.model, THRESHOLD, &w.input, &c).unwrap_err();
    assert!(matches!(e, ScanError::Mismatch(_)), "{e}");
    assert!(e.to_string().contains("chunk-size"), "{e}");

    // Different threshold: committed classifications would be stale.
    let mut c = cfg(&dir);
    c.resume = true;
    let e = scan(&w.model, -1.5, &w.input, &c).unwrap_err();
    assert!(matches!(e, ScanError::Mismatch(_)), "{e}");

    // Input changed length since the checkpoint.
    let grown = temp_path("grown.tsv");
    let mut bytes = fs::read(&w.input).unwrap();
    bytes.extend_from_slice(b"extra\tthing\there\n");
    fs::write(&grown, bytes).unwrap();
    let mut c = cfg(&dir);
    c.resume = true;
    let e = scan(&w.model, THRESHOLD, &grown, &c).unwrap_err();
    assert!(matches!(e, ScanError::Mismatch(_)), "{e}");
    assert!(e.to_string().contains("length changed"), "{e}");
}

#[test]
fn tampered_shard_is_detected_at_resume() {
    let w = world();
    let dir = temp_path("tampered");
    let mut c = cfg(&dir);
    c.max_shards = Some(2);
    scan(&w.model, THRESHOLD, &w.input, &c).unwrap();

    // Flip one byte inside a committed shard, preserving its length.
    let shard = dir.join(shard_file_name(0));
    let mut bytes = fs::read(&shard).unwrap();
    bytes[10] ^= 0x01;
    fs::write(&shard, &bytes).unwrap();

    let mut c = cfg(&dir);
    c.resume = true;
    let e = scan(&w.model, THRESHOLD, &w.input, &c).unwrap_err();
    assert!(matches!(e, ScanError::Corrupt(_)), "{e}");
    assert!(e.to_string().contains("CRC-32"), "{e}");
}
