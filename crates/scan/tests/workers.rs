//! Worker-pool behaviour of the scan pipeline:
//!
//! * chunk handoff is round-robin over per-worker queues, so every
//!   worker in an N-worker pool actually receives and processes work
//!   (the regression test for the serialized `Mutex<Receiver>` pool,
//!   where nothing guaranteed more than one worker ever stayed busy);
//! * the outcome reports the *resolved* job count and the true host
//!   core count, not the requested knob;
//! * shard output is bit-identical across every kernel × jobs
//!   combination — the SIMD kernels inherit the same byte-for-byte
//!   guarantees the scalar pipeline established.

use pge_core::{train_pge, PgeConfig, PgeModel};
use pge_datagen::{generate_catalog, CatalogConfig};
use pge_graph::{write_raw_triples, Dataset};
use pge_scan::{scan, shard_file_name, Manifest, ScanConfig, QUARANTINE_FILE};
use pge_tensor::{set_kernel, simd_supported, Kernel};
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::OnceLock;

struct World {
    model: PgeModel,
    input: PathBuf,
}

fn world() -> &'static World {
    static WORLD: OnceLock<World> = OnceLock::new();
    WORLD.get_or_init(|| {
        let dataset: Dataset = generate_catalog(&CatalogConfig {
            products: 80,
            labeled: 20,
            seed: 23,
            ..CatalogConfig::tiny()
        });
        let model = train_pge(
            &dataset,
            &PgeConfig {
                epochs: 1,
                ..PgeConfig::tiny()
            },
        )
        .model;
        let input = temp_path("input.tsv");
        let file = fs::File::create(&input).expect("create input");
        let n = write_raw_triples(&dataset, std::io::BufWriter::new(file)).expect("dump triples");
        assert!(n > 200, "need a few hundred rows to span many chunks");
        World { model, input }
    })
}

fn temp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pge-scan-workers-{}", std::process::id()));
    fs::create_dir_all(&dir).expect("create temp dir");
    dir.join(name)
}

fn full_output(out_dir: &Path) -> (Vec<u8>, Vec<u8>) {
    let manifest = Manifest::load(out_dir).unwrap().expect("manifest exists");
    let mut shards = Vec::new();
    for (i, s) in manifest.shards.iter().enumerate() {
        assert_eq!(s.file, shard_file_name(i));
        shards.extend_from_slice(&fs::read(out_dir.join(&s.file)).unwrap());
    }
    let quarantine = fs::read(out_dir.join(QUARANTINE_FILE)).unwrap_or_default();
    (shards, quarantine)
}

/// Every worker in a 4-worker pool receives chunks (round-robin keeps
/// the per-worker counts within one of each other) and logs busy time
/// for them. Under the old single shared queue nothing pinned work to
/// a worker, so a pool where one thread did everything passed every
/// output check — this is the observability that makes the bug a test
/// failure instead of a flat benchmark curve.
#[test]
fn all_workers_receive_and_process_chunks() {
    let w = world();
    let dir = temp_path("distribution");
    let mut c = ScanConfig::new(&dir);
    c.jobs = 4;
    c.chunk_size = 16; // hundreds of rows -> well over 8 chunks
    c.shard_chunks = 2;
    let outcome = scan(&w.model, 0.0, &w.input, &c).unwrap();

    assert!(outcome.done);
    assert_eq!(
        outcome.jobs, 4,
        "requested 4 workers, resolved {}",
        outcome.jobs
    );
    assert!(outcome.host_cpus >= 1);
    assert!(
        outcome.kernel == "scalar" || outcome.kernel == "simd",
        "unexpected kernel name {:?}",
        outcome.kernel
    );
    assert_eq!(outcome.worker_chunks.len(), 4);
    assert_eq!(outcome.worker_busy_sec.len(), 4);

    let total_chunks: u64 = outcome.worker_chunks.iter().sum();
    assert!(total_chunks >= 8, "want >=8 chunks, got {total_chunks}");
    let min = *outcome.worker_chunks.iter().min().unwrap();
    let max = *outcome.worker_chunks.iter().max().unwrap();
    assert!(
        min >= 1,
        "a worker got no chunks: {:?}",
        outcome.worker_chunks
    );
    assert!(
        max - min <= 1,
        "round-robin dispatch must spread chunks evenly: {:?}",
        outcome.worker_chunks
    );
    for (i, busy) in outcome.worker_busy_sec.iter().enumerate() {
        assert!(
            *busy > 0.0,
            "worker {i} processed chunks but logged no busy time"
        );
    }
    assert!(
        outcome.effective_parallelism > 0.0,
        "busy time was recorded, parallelism ratio must be positive"
    );
    fs::remove_dir_all(&dir).unwrap();
}

/// Shard + quarantine bytes are identical across kernel ∈ {scalar,
/// simd} × jobs ∈ {1, 4}. One `#[test]` because the kernel override
/// is process-global.
#[test]
fn output_identical_across_kernel_and_jobs_matrix() {
    let w = world();
    let mut kernels_under_test = vec![Kernel::Scalar];
    if simd_supported() {
        kernels_under_test.push(Kernel::Simd);
    } else {
        eprintln!("note: AVX2 unavailable, matrix covers the scalar kernel only");
    }

    let mut baseline: Option<(Vec<u8>, Vec<u8>)> = None;
    for kernel in kernels_under_test {
        for jobs in [1usize, 4] {
            set_kernel(Some(kernel));
            let dir = temp_path(&format!("matrix-{}-j{jobs}", kernel.name()));
            let mut c = ScanConfig::new(&dir);
            c.jobs = jobs;
            c.chunk_size = 16;
            c.shard_chunks = 2;
            let outcome = scan(&w.model, 0.0, &w.input, &c).unwrap();
            set_kernel(None);
            assert!(outcome.done);
            assert_eq!(outcome.kernel, kernel.name());

            // The manifest stores a CRC-32 per shard; identical bytes
            // imply identical CRCs, and the resume machinery verifies
            // them on every restart.
            let out = full_output(&dir);
            match &baseline {
                None => baseline = Some(out),
                Some(base) => assert_eq!(
                    &out,
                    base,
                    "kernel={} jobs={jobs} diverged from scalar jobs=1",
                    kernel.name()
                ),
            }
            fs::remove_dir_all(&dir).unwrap();
        }
    }

    // Kill + resume across a kernel flip: scan the first shard with
    // the scalar kernel, kill, resume with SIMD (when available). The
    // resume path re-verifies the committed shard's CRC-32 with the
    // new kernel active, and the finished output must still match the
    // uninterrupted baseline byte for byte.
    let dir = temp_path("matrix-kill-resume");
    let mut c = ScanConfig::new(&dir);
    c.jobs = 2;
    c.chunk_size = 16;
    c.shard_chunks = 2;
    c.max_shards = Some(1);
    set_kernel(Some(Kernel::Scalar));
    let first = scan(&w.model, 0.0, &w.input, &c).unwrap();
    assert!(!first.done);
    let resume_kernel = if simd_supported() {
        Kernel::Simd
    } else {
        Kernel::Scalar
    };
    set_kernel(Some(resume_kernel));
    let mut c = ScanConfig::new(&dir);
    c.jobs = 4;
    c.chunk_size = 16;
    c.shard_chunks = 2;
    c.resume = true;
    let second = scan(&w.model, 0.0, &w.input, &c).unwrap();
    set_kernel(None);
    assert!(second.done);
    assert_eq!(
        Some(full_output(&dir)),
        baseline,
        "kill under scalar + resume under {} diverged",
        resume_kernel.name()
    );
    fs::remove_dir_all(&dir).unwrap();
}
