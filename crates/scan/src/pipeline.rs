//! The streaming scan pipeline: reader → worker pool → ordered
//! committer.
//!
//! One reader thread streams the input line-at-a-time
//! ([`pge_graph::RawTripleReader`]) into fixed-size chunks; a pool of
//! `jobs` workers scores chunks through a [`CachedModel`] (sharing one
//! sharded [`EmbeddingCache`]); the committer (the calling thread)
//! restores chunk order, appends rows to the current shard, routes
//! malformed and unknown-attribute lines to the quarantine file, and
//! after every `shard_chunks` chunks makes the shard durable
//! (flush + fsync + rename) and atomically rewrites the checkpoint
//! manifest.
//!
//! **Determinism.** Scoring is a pure function of the row text (cache
//! hits return byte-identical vectors), chunk boundaries depend only
//! on `chunk_size`, and the committer writes chunks strictly in input
//! order — so the concatenated shard output is byte-identical for any
//! `jobs`, and a killed scan resumed from its last durable shard
//! reproduces exactly what an uninterrupted run would have written.
//!
//! **Parallelism.** Each worker owns a bounded private queue and the
//! reader deals chunks round-robin (`idx % jobs`), so chunk handoff
//! never serializes the pool. (The first cut shared one
//! `Mutex<Receiver>` across workers; on top of recv contention it
//! made every handoff a lock round-trip, and the scaling curve was
//! flat. A per-worker [`WorkerLedger`] now records busy time and
//! chunk counts per worker precisely so that regression class is
//! visible: spans around the scoring loop include blocked-on-channel
//! time and cannot distinguish a serialized pool from a busy one.)
//!
//! **Bounded memory.** Worker queues hold 2 chunks each and the done
//! channel `2 × jobs`, and the committer's reorder buffer cannot
//! exceed the number of in-flight chunks, so peak memory is
//! `O(jobs × chunk_size × row size)` regardless of input size.

use crate::checkpoint::{shard_file_name, Manifest, ShardEntry, MANIFEST_FILE, QUARANTINE_FILE};
use pge_core::{CachedModel, EmbeddingCache, PgeModel, ScoreScratch};
use pge_graph::{RawTriple, RawTripleError, RawTripleReader};
use pge_obs::{span, Stage, Tracer, WorkerLedger};
use pge_store::{CatalogReader, CatalogRecords, StoreError, CAT_MAGIC};
use pge_tensor::Crc32;
use std::collections::BTreeMap;
use std::fs::{self, File, OpenOptions};
use std::io::{self, BufReader, BufWriter, Seek, SeekFrom, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, Receiver};
use std::time::Instant;

/// Bulk-scan failures.
#[derive(Debug)]
pub enum ScanError {
    /// An I/O failure, with the operation that hit it.
    Io(String, io::Error),
    /// On-disk state (checkpoint, shard) failed validation.
    Corrupt(String),
    /// The requested scan is inconsistent with the existing
    /// checkpoint (different knobs, changed input, missing --resume).
    Mismatch(String),
}

impl ScanError {
    pub(crate) fn io(context: String, e: io::Error) -> Self {
        ScanError::Io(context, e)
    }
}

impl std::fmt::Display for ScanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScanError::Io(ctx, e) => write!(f, "{ctx}: {e}"),
            ScanError::Corrupt(m) => write!(f, "corrupt scan state: {m}"),
            ScanError::Mismatch(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for ScanError {}

/// Knobs of a bulk scan.
#[derive(Clone, Debug)]
pub struct ScanConfig {
    /// Output directory: shards, quarantine, and the checkpoint
    /// manifest all live here.
    pub out_dir: PathBuf,
    /// Worker threads scoring chunks; 0 = auto (available
    /// parallelism, capped at 8 like the offline detector).
    pub jobs: usize,
    /// Rows per chunk (the unit of work handed to one worker).
    pub chunk_size: usize,
    /// Chunks per output shard (the unit of durability). A resumed
    /// scan must reuse the original `chunk_size` and `shard_chunks`.
    pub shard_chunks: usize,
    /// Embedding-cache capacity shared by all workers.
    pub cache_cap: usize,
    /// Continue from an existing checkpoint instead of insisting on a
    /// clean output directory.
    pub resume: bool,
    /// Commit at most this many shards, then stop as if killed —
    /// the ops/test hook behind the kill-and-resume guarantees.
    pub max_shards: Option<u64>,
}

impl ScanConfig {
    pub fn new(out_dir: impl Into<PathBuf>) -> Self {
        ScanConfig {
            out_dir: out_dir.into(),
            jobs: 0,
            chunk_size: 2048,
            shard_chunks: 16,
            cache_cap: 65_536,
            resume: false,
            max_shards: None,
        }
    }

    /// The worker count a scan with this config will actually use:
    /// `jobs` when explicit, otherwise the host's available
    /// parallelism capped at 8. Lets callers log the resolved value
    /// up front instead of echoing the `0 = auto` sentinel.
    pub fn resolved_jobs(&self) -> usize {
        resolve_jobs(self.jobs)
    }
}

/// What a [`scan`] invocation accomplished.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ScanOutcome {
    /// Rows scored by *this* invocation.
    pub rows_scanned: u64,
    /// Rows scored across all invocations (committed shards).
    pub rows_total: u64,
    /// Rows flagged as errors by this invocation.
    pub errors_flagged: u64,
    /// Rows flagged as errors across all committed shards.
    pub errors_total: u64,
    /// Lines quarantined by this invocation.
    pub quarantined: u64,
    /// Lines quarantined across all invocations.
    pub quarantined_total: u64,
    /// Shards committed by this invocation.
    pub shards_committed: u64,
    /// Shards on disk in total.
    pub shards_total: u64,
    /// Rows skipped because a checkpoint already covered them.
    pub resumed_rows: u64,
    /// True when the whole input has been scanned (false after a
    /// `max_shards` stop).
    pub done: bool,
    pub elapsed_sec: f64,
    /// This invocation's scored rows per second.
    pub rows_per_sec: f64,
    pub cache_hits: u64,
    pub cache_misses: u64,
    /// Worker threads actually used (resolved from `ScanConfig::jobs`;
    /// 0 on the nothing-to-do path).
    pub jobs: usize,
    /// `std::thread::available_parallelism()` on this host — what
    /// `jobs = 0` auto-detection saw, recorded so bench JSON reports
    /// the true core count instead of a guess.
    pub host_cpus: usize,
    /// Active compute kernel (`"scalar"` or `"simd"`).
    pub kernel: String,
    /// Per-worker busy seconds (time actively scoring chunks,
    /// excluding channel waits), in worker order.
    pub worker_busy_sec: Vec<f64>,
    /// Per-worker chunks processed, in worker order.
    pub worker_chunks: Vec<u64>,
    /// Σ worker busy time / wall time: ~1.0 means the pool did one
    /// core's worth of concurrent scoring no matter how many workers
    /// it had — the signature of the serialized-handoff bug.
    pub effective_parallelism: f64,
}

/// A chunk of parsed input on its way to the workers.
struct Chunk {
    idx: u64,
    rows: Vec<RawTriple>,
    bad: Vec<RawTripleError>,
    /// Reader position after this chunk's last line — what the
    /// checkpoint records when the covering shard commits.
    end_line: u64,
    end_offset: u64,
    /// Flight-recorder trace ID following this chunk through
    /// read → score → commit.
    trace: u64,
    /// When the reader produced the chunk; the trace's epoch.
    born: Instant,
}

/// A chunk after scoring: `None` = the attribute is unknown to the
/// model (no relation vector), which quarantines the row.
struct ScoredChunk {
    idx: u64,
    rows: Vec<(RawTriple, Option<f32>)>,
    bad: Vec<RawTripleError>,
    end_line: u64,
    end_offset: u64,
    trace: u64,
    born: Instant,
}

fn resolve_jobs(jobs: usize) -> usize {
    if jobs > 0 {
        return jobs;
    }
    std::thread::available_parallelism()
        .map(|n| n.get().min(8))
        .unwrap_or(1)
}

/// An output shard being accumulated, not yet durable.
struct ShardInProgress {
    tmp: PathBuf,
    file: BufWriter<File>,
    crc: Crc32,
    bytes: u64,
    rows: u64,
    errors: u64,
    chunks: usize,
}

/// The ordered writer: quarantine sink, current shard, checkpoint.
struct Committer<'a> {
    out_dir: &'a Path,
    manifest: Manifest,
    threshold: f32,
    quarantine: File,
    q_bytes: u64,
    /// `q_bytes` as of the last commit: the quarantine file is only
    /// fsynced when it actually grew (the common case is zero
    /// quarantined lines, where the fsync was pure per-shard latency).
    q_synced_bytes: u64,
    q_lines: u64,
    cur: Option<ShardInProgress>,
    /// Reader position covered by everything appended so far.
    pos: (u64, u64),
    /// This invocation's tallies.
    new_rows: u64,
    new_errors: u64,
    new_quarantined: u64,
    new_shards: u64,
    line_buf: String,
}

impl<'a> Committer<'a> {
    fn shard(&mut self) -> Result<&mut ShardInProgress, ScanError> {
        if self.cur.is_none() {
            let tmp = self.out_dir.join(format!(
                "{}.tmp",
                shard_file_name(self.manifest.shards.len())
            ));
            let file = File::create(&tmp)
                .map_err(|e| ScanError::io(format!("create {}", tmp.display()), e))?;
            self.cur = Some(ShardInProgress {
                tmp,
                // 256 KiB batches ~2k scored rows per write syscall;
                // the stock 8 KiB buffer paid one every ~70 rows.
                file: BufWriter::with_capacity(256 << 10, file),
                crc: Crc32::new(),
                bytes: 0,
                rows: 0,
                errors: 0,
                chunks: 0,
            });
        }
        Ok(self.cur.as_mut().unwrap())
    }

    fn quarantine_line(
        &mut self,
        line: usize,
        offset: u64,
        reason: &str,
        raw: &str,
    ) -> Result<(), ScanError> {
        self.line_buf.clear();
        use std::fmt::Write as _;
        let _ = writeln!(self.line_buf, "{line}\t{offset}\t{reason}\t{raw}");
        self.quarantine
            .write_all(self.line_buf.as_bytes())
            .map_err(|e| ScanError::io("append quarantine".into(), e))?;
        self.q_bytes += self.line_buf.len() as u64;
        self.q_lines += 1;
        self.new_quarantined += 1;
        Ok(())
    }

    /// Append one scored chunk: shard rows in input order, malformed
    /// and unknown-attribute lines merged into the quarantine by line
    /// number.
    fn append_chunk(&mut self, c: ScoredChunk) -> Result<(), ScanError> {
        let _s = span("scan.write");
        let threshold = self.threshold;
        let mut bad = c.bad.into_iter().peekable();
        for (t, score) in c.rows {
            while bad.peek().is_some_and(|b| b.line < t.line) {
                let b = bad.next().unwrap();
                self.quarantine_line(b.line, b.offset, &b.reason, &b.raw)?;
            }
            match score {
                Some(p) => {
                    let is_error = p.is_nan() || p <= threshold;
                    self.line_buf.clear();
                    use std::fmt::Write as _;
                    let _ = writeln!(self.line_buf, "{}\t{}\t{}", t.text(), p, u8::from(is_error));
                    let line = std::mem::take(&mut self.line_buf);
                    let sp = self.shard()?;
                    sp.crc.update(line.as_bytes());
                    sp.bytes += line.len() as u64;
                    sp.rows += 1;
                    sp.errors += u64::from(is_error);
                    let res = sp.file.write_all(line.as_bytes());
                    self.line_buf = line;
                    res.map_err(|e| ScanError::io("append shard".into(), e))?;
                    self.new_rows += 1;
                    self.new_errors += u64::from(is_error);
                }
                None => {
                    let reason = format!("unknown attribute {:?}", t.attr());
                    self.quarantine_line(t.line, t.offset, &reason, t.text())?;
                }
            }
        }
        for b in bad {
            self.quarantine_line(b.line, b.offset, &b.reason, &b.raw)?;
        }
        self.pos = (c.end_line, c.end_offset);
        // Even a chunk with zero scorable rows advances the shard's
        // chunk count: shard boundaries must depend only on the input,
        // never on how many rows survived parsing.
        self.shard()?.chunks += 1;
        Ok(())
    }

    /// True when the current shard holds `shard_chunks` chunks.
    fn shard_full(&self) -> bool {
        self.cur
            .as_ref()
            .is_some_and(|s| s.chunks >= self.manifest.shard_chunks)
    }

    /// Make the current shard durable and checkpoint: flush + fsync,
    /// rename to its final name, fsync the quarantine, atomically
    /// rewrite the manifest.
    fn commit(&mut self) -> Result<(), ScanError> {
        let Some(sp) = self.cur.take() else {
            return Ok(());
        };
        let _s = span("scan.commit");
        let name = shard_file_name(self.manifest.shards.len());
        let final_path = self.out_dir.join(&name);
        let file = sp
            .file
            .into_inner()
            .map_err(|e| ScanError::io(format!("flush {name}"), e.into_error()))?;
        file.sync_all()
            .map_err(|e| ScanError::io(format!("fsync {name}"), e))?;
        drop(file);
        fs::rename(&sp.tmp, &final_path).map_err(|e| ScanError::io(format!("rename {name}"), e))?;
        if self.q_bytes != self.q_synced_bytes {
            self.quarantine
                .sync_all()
                .map_err(|e| ScanError::io("fsync quarantine".into(), e))?;
            self.q_synced_bytes = self.q_bytes;
        }
        self.manifest.shards.push(ShardEntry {
            file: name,
            rows: sp.rows,
            errors: sp.errors,
            bytes: sp.bytes,
            crc32: sp.crc.finish(),
        });
        self.manifest.lines_done = self.pos.0;
        self.manifest.input_bytes = self.pos.1;
        self.manifest.quarantined = self.q_lines;
        self.manifest.quarantine_bytes = self.q_bytes;
        self.manifest.store(self.out_dir)?;
        self.new_shards += 1;
        Ok(())
    }

    /// Commit any partial shard and mark the scan complete.
    fn finalize(&mut self) -> Result<(), ScanError> {
        self.commit()?;
        self.manifest.done = true;
        // Trailing blank/comment lines can advance the reader past
        // the last committed chunk; record the final position.
        self.manifest.lines_done = self.manifest.lines_done.max(self.pos.0);
        self.manifest.input_bytes = self.manifest.input_bytes.max(self.pos.1);
        self.manifest.store(self.out_dir)
    }
}

/// Validate an existing checkpoint against this invocation and the
/// on-disk shards, returning the manifest to resume from.
fn validate_resume(
    m: Manifest,
    cfg: &ScanConfig,
    threshold: f32,
    input_len: u64,
) -> Result<Manifest, ScanError> {
    let want = |what: &str, a: String, b: String| {
        Err(ScanError::Mismatch(format!(
            "cannot resume: {what} differs from the checkpoint (checkpoint {a}, requested {b}); \
             rerun with the original settings or start a fresh --out-dir"
        )))
    };
    if m.chunk_size != cfg.chunk_size {
        return want(
            "--chunk-size",
            m.chunk_size.to_string(),
            cfg.chunk_size.to_string(),
        );
    }
    if m.shard_chunks != cfg.shard_chunks {
        return want(
            "--shard-chunks",
            m.shard_chunks.to_string(),
            cfg.shard_chunks.to_string(),
        );
    }
    if m.threshold_bits != threshold.to_bits() {
        return want(
            "threshold",
            f32::from_bits(m.threshold_bits).to_string(),
            threshold.to_string(),
        );
    }
    if m.input_len != input_len {
        return Err(ScanError::Mismatch(format!(
            "cannot resume: input file length changed ({} -> {input_len} bytes); \
             the checkpoint no longer describes this input",
            m.input_len
        )));
    }
    for s in &m.shards {
        let path = cfg.out_dir.join(&s.file);
        let bytes = fs::read(&path)
            .map_err(|e| ScanError::io(format!("read committed shard {}", path.display()), e))?;
        if bytes.len() as u64 != s.bytes {
            return Err(ScanError::Corrupt(format!(
                "shard {} is {} bytes, checkpoint says {}",
                s.file,
                bytes.len(),
                s.bytes
            )));
        }
        let crc = pge_tensor::crc32(&bytes);
        if crc != s.crc32 {
            return Err(ScanError::Corrupt(format!(
                "shard {} CRC-32 mismatch (file {crc:08x}, checkpoint {:08x})",
                s.file, s.crc32
            )));
        }
    }
    Ok(m)
}

/// Remove stray `*.tmp` files (a kill mid-shard or mid-manifest-write
/// leaves one; it is not durable state).
fn remove_stale_tmp(out_dir: &Path) -> Result<(), ScanError> {
    let entries = fs::read_dir(out_dir)
        .map_err(|e| ScanError::io(format!("list {}", out_dir.display()), e))?;
    for entry in entries {
        let entry = entry.map_err(|e| ScanError::io("list out-dir".into(), e))?;
        if entry.path().extension().is_some_and(|e| e == "tmp") {
            fs::remove_file(entry.path())
                .map_err(|e| ScanError::io("remove stale tmp".into(), e))?;
        }
    }
    Ok(())
}

/// The scan's input stream: raw TSV lines or a binary PGECAT01
/// catalog, sniffed by magic. Both yield [`RawTriple`] rows with
/// (line, byte-offset) resume positions, so the chunker, workers,
/// committer, and checkpoint manifest are format-agnostic — a resumed
/// catalog scan is byte-identical to an uninterrupted one exactly
/// like a resumed TSV scan.
enum TripleSource {
    Tsv(RawTripleReader<BufReader<File>>),
    Catalog(CatalogRecords),
}

impl TripleSource {
    /// Open `input` positioned at a resume point (`lines_done` rows
    /// already consumed, the next row starting at byte `offset`; 0/0
    /// means the beginning). Opening a catalog verifies its whole-body
    /// CRC before any record is served.
    fn open(input: &Path, lines_done: u64, offset: u64) -> Result<TripleSource, ScanError> {
        let is_catalog = matches!(pge_store::peek_magic(input), Ok(m) if &m == CAT_MAGIC);
        if is_catalog {
            let reader = CatalogReader::open(input).map_err(|e| match e {
                StoreError::Io(io) => ScanError::io(format!("open {}", input.display()), io),
                other => ScanError::Corrupt(format!("catalog {}: {other}", input.display())),
            })?;
            let records = if offset == 0 {
                reader.records()
            } else {
                reader.records_from(lines_done, offset)
            }
            .map_err(|e| ScanError::io(format!("open {}", input.display()), e))?;
            Ok(TripleSource::Catalog(records))
        } else {
            let mut f = File::open(input)
                .map_err(|e| ScanError::io(format!("open {}", input.display()), e))?;
            f.seek(SeekFrom::Start(offset))
                .map_err(|e| ScanError::io("seek input".into(), e))?;
            Ok(TripleSource::Tsv(RawTripleReader::with_position(
                BufReader::with_capacity(256 << 10, f),
                lines_done as usize,
                offset,
            )))
        }
    }

    fn next_row(&mut self) -> Option<Result<RawTriple, RawTripleError>> {
        match self {
            TripleSource::Tsv(r) => r.next(),
            TripleSource::Catalog(r) => {
                let rec = match r.next()? {
                    Ok(rec) => rec,
                    // Catalog framing is length-prefixed: a bad record
                    // cannot be skipped, so surface it as a fatal read
                    // failure (the scan aborts) rather than data to
                    // quarantine.
                    Err(e) => {
                        return Some(Err(RawTripleError {
                            line: r.lines_done() as usize + 1,
                            offset: r.offset(),
                            reason: format!("read error: {e}"),
                            raw: String::new(),
                        }))
                    }
                };
                Some(RawTriple::from_fields(
                    rec.line as usize,
                    rec.offset,
                    &rec.title,
                    &rec.attr,
                    &rec.value,
                ))
            }
        }
    }

    /// Rows consumed so far (the committer's checkpoint position).
    fn lines_done(&self) -> u64 {
        match self {
            TripleSource::Tsv(r) => r.lines_done() as u64,
            TripleSource::Catalog(r) => r.lines_done(),
        }
    }

    /// Byte offset of the next unread row.
    fn offset(&self) -> u64 {
        match self {
            TripleSource::Tsv(r) => r.offset(),
            TripleSource::Catalog(r) => r.offset(),
        }
    }
}

/// Run a bulk scan of `input` (raw `title \t attr \t value` lines or
/// a binary PGECAT01 catalog, auto-detected by magic), scoring every
/// row with `model` and classifying against `threshold`, writing
/// sharded output + quarantine + checkpoint into `cfg.out_dir`. See
/// the module docs for the determinism and memory guarantees.
pub fn scan(
    model: &PgeModel,
    threshold: f32,
    input: &Path,
    cfg: &ScanConfig,
) -> Result<ScanOutcome, ScanError> {
    // Callers that don't care about per-chunk traces get a private
    // tracer; its retained set is simply dropped with it.
    let tracer = Tracer::default();
    scan_with_tracer(model, threshold, input, cfg, &tracer)
}

/// [`scan`], but recording every chunk's read → score → commit
/// timeline into `tracer`'s flight recorder. Chunks whose end-to-end
/// latency exceeds the tracer's threshold land in its retained set,
/// which the CLI dumps into the runlog as `trace` events.
pub fn scan_with_tracer(
    model: &PgeModel,
    threshold: f32,
    input: &Path,
    cfg: &ScanConfig,
    tracer: &Tracer,
) -> Result<ScanOutcome, ScanError> {
    let started = Instant::now();
    fs::create_dir_all(&cfg.out_dir)
        .map_err(|e| ScanError::io(format!("create {}", cfg.out_dir.display()), e))?;
    let input_len = fs::metadata(input)
        .map_err(|e| ScanError::io(format!("stat {}", input.display()), e))?
        .len();

    let existing = Manifest::load(&cfg.out_dir)?;
    let manifest = match (cfg.resume, existing) {
        (false, Some(_)) => {
            return Err(ScanError::Mismatch(format!(
                "{} already contains {MANIFEST_FILE}; pass resume to continue it \
                 or point the scan at a clean directory",
                cfg.out_dir.display()
            )))
        }
        (true, Some(m)) => validate_resume(m, cfg, threshold, input_len)?,
        (_, None) => Manifest::fresh(cfg.chunk_size, cfg.shard_chunks, threshold, input_len),
    };
    remove_stale_tmp(&cfg.out_dir)?;

    let resumed_rows = manifest.rows_total();
    if manifest.done {
        // Nothing to do; report the durable totals.
        return Ok(ScanOutcome {
            rows_total: manifest.rows_total(),
            errors_total: manifest.errors_total(),
            quarantined_total: manifest.quarantined,
            shards_total: manifest.shards.len() as u64,
            resumed_rows,
            done: true,
            elapsed_sec: started.elapsed().as_secs_f64(),
            ..ScanOutcome::default()
        });
    }

    // Quarantine: drop any tail written after the last checkpoint,
    // then append.
    let q_path = cfg.out_dir.join(QUARANTINE_FILE);
    let quarantine = OpenOptions::new()
        .create(true)
        .write(true)
        .truncate(false)
        .open(&q_path)
        .map_err(|e| ScanError::io(format!("open {}", q_path.display()), e))?;
    let q_len = quarantine
        .metadata()
        .map_err(|e| ScanError::io("stat quarantine".into(), e))?
        .len();
    if q_len < manifest.quarantine_bytes {
        return Err(ScanError::Corrupt(format!(
            "quarantine file is {q_len} bytes, checkpoint says {}",
            manifest.quarantine_bytes
        )));
    }
    quarantine
        .set_len(manifest.quarantine_bytes)
        .map_err(|e| ScanError::io("truncate quarantine".into(), e))?;
    let mut quarantine = quarantine;
    quarantine
        .seek(SeekFrom::End(0))
        .map_err(|e| ScanError::io("seek quarantine".into(), e))?;

    // Input, positioned just past the last committed shard.
    let reader = TripleSource::open(input, manifest.lines_done, manifest.input_bytes)?;

    let jobs = resolve_jobs(cfg.jobs);
    let cache = EmbeddingCache::new(cfg.cache_cap);
    let cached = CachedModel::new(model, &cache);
    let reg = pge_obs::global();
    let rows_ctr = reg.counter("pge_scan_rows_total", "Rows scored by bulk scans");
    let quar_ctr = reg.counter(
        "pge_scan_quarantined_total",
        "Input lines quarantined by bulk scans",
    );
    let shard_ctr = reg.counter(
        "pge_scan_shards_total",
        "Output shards committed by bulk scans",
    );
    let flagged_ctr = reg.counter(
        "pge_scan_errors_flagged_total",
        "Rows flagged as errors by bulk scans",
    );

    let mut committer = Committer {
        out_dir: &cfg.out_dir,
        threshold,
        q_bytes: manifest.quarantine_bytes,
        q_synced_bytes: manifest.quarantine_bytes,
        q_lines: manifest.quarantined,
        pos: (manifest.lines_done, manifest.input_bytes),
        manifest,
        quarantine,
        cur: None,
        new_rows: 0,
        new_errors: 0,
        new_quarantined: 0,
        new_shards: 0,
        line_buf: String::new(),
    };

    let stop = AtomicBool::new(false);
    let chunk_size = cfg.chunk_size;
    let max_shards = cfg.max_shards;

    // One bounded queue per worker, dealt round-robin by chunk index:
    // chunk handoff involves no shared lock and no shared receiver, so
    // workers never take turns pulling work. (The previous design — a
    // single sync_channel behind a Mutex<Receiver> — serialized the
    // pool on the handoff path and flattened the scaling curve.)
    let (work_txs, work_rxs): (Vec<_>, Vec<_>) =
        (0..jobs).map(|_| sync_channel::<Chunk>(2)).unzip();
    // Deep enough that workers ride through a shard commit (flush +
    // fsync + manifest rewrite, ~10ms) without stalling: with only
    // 2×jobs chunks of headroom the whole pipeline paused behind every
    // commit on a busy box.
    let (done_tx, done_rx) = sync_channel::<ScoredChunk>((jobs * 2).max(8));
    let ledger = WorkerLedger::new(jobs);

    let run = std::thread::scope(|s| -> Result<bool, ScanError> {
        for (worker, work_rx) in work_rxs.into_iter().enumerate() {
            let done_tx = done_tx.clone();
            let cached = &cached;
            let ledger = &ledger;
            s.spawn(move || {
                // Reusable embedding buffers: the >90%-hit cache path
                // is allocation-free through the scratch API.
                let mut scratch = ScoreScratch::default();
                // Loop ends when the reader drops this worker's queue.
                while let Ok(chunk) = work_rx.recv() {
                    let _sp = span("scan.score");
                    tracer.record(chunk.trace, Stage::ChunkScore, chunk.rows.len() as u64);
                    let busy_start = Instant::now();
                    let rows = chunk
                        .rows
                        .into_iter()
                        .map(|t| {
                            let score = cached.score_text_triple_scratch(
                                t.title(),
                                t.attr(),
                                t.value(),
                                &mut scratch,
                            );
                            (t, score)
                        })
                        .collect();
                    // Busy time covers scoring only; the send below can
                    // block on committer backpressure, which is idle
                    // time for this worker.
                    ledger.record(worker, busy_start.elapsed());
                    let scored = ScoredChunk {
                        idx: chunk.idx,
                        rows,
                        bad: chunk.bad,
                        end_line: chunk.end_line,
                        end_offset: chunk.end_offset,
                        trace: chunk.trace,
                        born: chunk.born,
                    };
                    if done_tx.send(scored).is_err() {
                        break; // committer stopped early
                    }
                }
            });
        }
        drop(done_tx);

        let stop_ref = &stop;
        let reader_handle = s.spawn(move || -> Result<(), ScanError> {
            let mut reader = reader;
            let work_txs = work_txs;
            let mut idx = 0u64;
            loop {
                if stop_ref.load(Ordering::Relaxed) {
                    return Ok(());
                }
                let _sp = span("scan.read");
                let mut rows = Vec::with_capacity(chunk_size.min(8192));
                let mut bad = Vec::new();
                let mut eof = false;
                while rows.len() < chunk_size {
                    match reader.next_row() {
                        Some(Ok(t)) => rows.push(t),
                        Some(Err(e)) if e.is_read_failure() => {
                            return Err(ScanError::Io(
                                format!("read input at line {}", e.line),
                                io::Error::other(e.reason),
                            ));
                        }
                        Some(Err(e)) => bad.push(e),
                        None => {
                            eof = true;
                            break;
                        }
                    }
                }
                if !rows.is_empty() || !bad.is_empty() {
                    let trace = tracer.begin();
                    tracer.record(trace, Stage::ChunkRead, rows.len() as u64);
                    let chunk = Chunk {
                        idx,
                        rows,
                        bad,
                        end_line: reader.lines_done(),
                        end_offset: reader.offset(),
                        trace,
                        born: Instant::now(),
                    };
                    let target = (idx % jobs as u64) as usize;
                    idx += 1;
                    if work_txs[target].send(chunk).is_err() {
                        return Ok(()); // workers gone: early stop
                    }
                }
                if eof {
                    return Ok(());
                }
            }
        });

        let result = drive_committer(&mut committer, done_rx, max_shards, &stop, tracer);
        let reader_result = reader_handle
            .join()
            .unwrap_or_else(|_| Err(ScanError::Corrupt("reader thread panicked".into())));
        let stopped_early = result?;
        reader_result?;
        Ok(stopped_early)
    });
    let stopped_early = run?;

    if !stopped_early {
        committer.finalize()?;
    }

    rows_ctr.add(committer.new_rows);
    quar_ctr.add(committer.new_quarantined);
    shard_ctr.add(committer.new_shards);
    flagged_ctr.add(committer.new_errors);

    let elapsed = started.elapsed().as_secs_f64();
    let wall = started.elapsed();
    let worker_stats = ledger.stats();
    Ok(ScanOutcome {
        rows_scanned: committer.new_rows,
        rows_total: committer.manifest.rows_total(),
        errors_flagged: committer.new_errors,
        errors_total: committer.manifest.errors_total(),
        quarantined: committer.new_quarantined,
        quarantined_total: committer.q_lines,
        shards_committed: committer.new_shards,
        shards_total: committer.manifest.shards.len() as u64,
        resumed_rows,
        done: !stopped_early,
        elapsed_sec: elapsed,
        rows_per_sec: if elapsed > 0.0 {
            committer.new_rows as f64 / elapsed
        } else {
            0.0
        },
        cache_hits: cache.hits(),
        cache_misses: cache.misses(),
        jobs,
        host_cpus: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        kernel: pge_tensor::active_kernel().name().to_string(),
        worker_busy_sec: worker_stats.iter().map(|s| s.busy.as_secs_f64()).collect(),
        worker_chunks: worker_stats.iter().map(|s| s.chunks).collect(),
        effective_parallelism: ledger.effective_parallelism(wall),
    })
}

/// Consume scored chunks in input order, committing shards as they
/// fill. Returns `Ok(true)` when the scan stopped early (reached
/// `max_shards`), `Ok(false)` when every chunk was written.
fn drive_committer(
    committer: &mut Committer<'_>,
    done_rx: Receiver<ScoredChunk>,
    max_shards: Option<u64>,
    stop: &AtomicBool,
    tracer: &Tracer,
) -> Result<bool, ScanError> {
    let mut pending: BTreeMap<u64, ScoredChunk> = BTreeMap::new();
    let mut next_idx = 0u64;
    let mut stopped = false;
    let mut failure: Option<ScanError> = None;
    for scored in done_rx.iter() {
        if stopped {
            continue; // drain so blocked workers can exit
        }
        pending.insert(scored.idx, scored);
        while let Some(c) = pending.remove(&next_idx) {
            next_idx += 1;
            // The commit event is stamped when ordered write-out
            // begins, so score → chunk_commit covers scoring plus
            // reorder-buffer wait; the trace finishes once the chunk's
            // rows (and any covering shard commit) are durable-ordered.
            let (trace, born) = (c.trace, c.born);
            tracer.record(trace, Stage::ChunkCommit, c.rows.len() as u64);
            let step = || -> Result<bool, ScanError> {
                // returns true to stop early
                committer.append_chunk(c)?;
                if committer.shard_full() {
                    committer.commit()?;
                    if max_shards.is_some_and(|m| committer.new_shards >= m) {
                        return Ok(true);
                    }
                }
                Ok(false)
            };
            match step() {
                Ok(false) => {
                    tracer.finish(trace, born.elapsed(), false);
                }
                Ok(true) => {
                    tracer.finish(trace, born.elapsed(), false);
                    stop.store(true, Ordering::Relaxed);
                    stopped = true;
                    pending.clear();
                    break;
                }
                Err(e) => {
                    tracer.finish(trace, born.elapsed(), true);
                    stop.store(true, Ordering::Relaxed);
                    stopped = true;
                    failure = Some(e);
                    pending.clear();
                    break;
                }
            }
        }
    }
    if let Some(e) = failure {
        return Err(e);
    }
    Ok(stopped)
}
