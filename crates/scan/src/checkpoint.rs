//! The durable checkpoint manifest a bulk scan commits after every
//! shard.
//!
//! `checkpoint.json` lives in the scan's output directory and is
//! rewritten atomically (write to a temp file, fsync, rename) each
//! time a shard becomes durable. It records exactly how far the scan
//! has progressed — input byte offset, line count, quarantine byte
//! length — plus a CRC-32 per committed shard, so a killed scan can
//! resume from the last durable shard, verify that nothing on disk
//! rotted in between, and produce byte-identical output to a run that
//! was never interrupted.

use crate::pipeline::ScanError;
use pge_obs::json::{parse, Json};
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Manifest file name inside the scan output directory.
pub const MANIFEST_FILE: &str = "checkpoint.json";

/// Quarantine file name inside the scan output directory.
pub const QUARANTINE_FILE: &str = "quarantine.tsv";

/// Name of the `i`-th output shard.
pub fn shard_file_name(i: usize) -> String {
    format!("shard-{i:04}.tsv")
}

/// One committed (durable, CRC-stamped) output shard.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardEntry {
    pub file: String,
    /// Scored rows in this shard.
    pub rows: u64,
    /// Rows flagged as errors in this shard.
    pub errors: u64,
    /// File length in bytes.
    pub bytes: u64,
    /// CRC-32 of the file contents.
    pub crc32: u32,
}

/// Scan progress as of the last committed shard.
#[derive(Clone, Debug, PartialEq)]
pub struct Manifest {
    /// Rows per chunk — shard boundaries depend on it, so a resumed
    /// scan must use the identical value.
    pub chunk_size: usize,
    /// Chunks per shard; same resume constraint as `chunk_size`.
    pub shard_chunks: usize,
    /// Bit pattern of the `is_error` threshold: the classification in
    /// already-committed shards depends on it exactly.
    pub threshold_bits: u32,
    /// Total input length in bytes when the scan started; a resumed
    /// scan refuses an input file whose size changed.
    pub input_len: u64,
    /// Input bytes consumed through the last committed shard.
    pub input_bytes: u64,
    /// Input lines consumed through the last committed shard.
    pub lines_done: u64,
    /// Quarantined lines through the last committed shard.
    pub quarantined: u64,
    /// Quarantine file length at the last commit; a resume truncates
    /// the file back to this, dropping un-checkpointed tail writes.
    pub quarantine_bytes: u64,
    /// True once the whole input has been scanned.
    pub done: bool,
    pub shards: Vec<ShardEntry>,
}

impl Manifest {
    pub fn fresh(chunk_size: usize, shard_chunks: usize, threshold: f32, input_len: u64) -> Self {
        Manifest {
            chunk_size,
            shard_chunks,
            threshold_bits: threshold.to_bits(),
            input_len,
            input_bytes: 0,
            lines_done: 0,
            quarantined: 0,
            quarantine_bytes: 0,
            done: false,
            shards: Vec::new(),
        }
    }

    /// Rows scored across all committed shards.
    pub fn rows_total(&self) -> u64 {
        self.shards.iter().map(|s| s.rows).sum()
    }

    /// Rows flagged as errors across all committed shards.
    pub fn errors_total(&self) -> u64 {
        self.shards.iter().map(|s| s.errors).sum()
    }

    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("version".into(), Json::Num(1.0)),
            ("chunk_size".into(), Json::Num(self.chunk_size as f64)),
            ("shard_chunks".into(), Json::Num(self.shard_chunks as f64)),
            (
                "threshold_bits".into(),
                Json::Str(format!("{:08x}", self.threshold_bits)),
            ),
            ("input_len".into(), Json::Num(self.input_len as f64)),
            ("input_bytes".into(), Json::Num(self.input_bytes as f64)),
            ("lines_done".into(), Json::Num(self.lines_done as f64)),
            ("quarantined".into(), Json::Num(self.quarantined as f64)),
            (
                "quarantine_bytes".into(),
                Json::Num(self.quarantine_bytes as f64),
            ),
            ("done".into(), Json::Bool(self.done)),
            (
                "shards".into(),
                Json::Arr(
                    self.shards
                        .iter()
                        .map(|s| {
                            Json::Obj(vec![
                                ("file".into(), Json::Str(s.file.clone())),
                                ("rows".into(), Json::Num(s.rows as f64)),
                                ("errors".into(), Json::Num(s.errors as f64)),
                                ("bytes".into(), Json::Num(s.bytes as f64)),
                                ("crc32".into(), Json::Str(format!("{:08x}", s.crc32))),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    pub fn from_json(v: &Json) -> Result<Manifest, ScanError> {
        let corrupt = |m: String| ScanError::Corrupt(m);
        let num = |k: &str| -> Result<u64, ScanError> {
            v.get(k)
                .and_then(Json::as_f64)
                .map(|n| n as u64)
                .ok_or_else(|| corrupt(format!("checkpoint missing numeric field {k:?}")))
        };
        let hex = |j: Option<&Json>, what: &str| -> Result<u32, ScanError> {
            j.and_then(Json::as_str)
                .and_then(|s| u32::from_str_radix(s, 16).ok())
                .ok_or_else(|| corrupt(format!("checkpoint missing hex field {what:?}")))
        };
        if num("version")? != 1 {
            return Err(corrupt("unsupported checkpoint version".into()));
        }
        let shards = v
            .get("shards")
            .and_then(Json::as_array)
            .ok_or_else(|| corrupt("checkpoint missing shards array".into()))?
            .iter()
            .map(|s| {
                Ok(ShardEntry {
                    file: s
                        .get("file")
                        .and_then(Json::as_str)
                        .ok_or_else(|| corrupt("shard entry missing file".into()))?
                        .to_string(),
                    rows: s.get("rows").and_then(Json::as_f64).unwrap_or(0.0) as u64,
                    errors: s.get("errors").and_then(Json::as_f64).unwrap_or(0.0) as u64,
                    bytes: s
                        .get("bytes")
                        .and_then(Json::as_f64)
                        .ok_or_else(|| corrupt("shard entry missing bytes".into()))?
                        as u64,
                    crc32: hex(s.get("crc32"), "shard crc32")?,
                })
            })
            .collect::<Result<Vec<_>, ScanError>>()?;
        Ok(Manifest {
            chunk_size: num("chunk_size")? as usize,
            shard_chunks: num("shard_chunks")? as usize,
            threshold_bits: hex(v.get("threshold_bits"), "threshold_bits")?,
            input_len: num("input_len")?,
            input_bytes: num("input_bytes")?,
            lines_done: num("lines_done")?,
            quarantined: num("quarantined")?,
            quarantine_bytes: num("quarantine_bytes")?,
            done: v.get("done").and_then(Json::as_bool).unwrap_or(false),
            shards,
        })
    }

    /// Load the manifest from `out_dir`, or `None` when no checkpoint
    /// exists (a fresh directory).
    pub fn load(out_dir: &Path) -> Result<Option<Manifest>, ScanError> {
        let path = out_dir.join(MANIFEST_FILE);
        let text = match fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(ScanError::io(format!("read {}", path.display()), e)),
        };
        let json = parse(&text)
            .map_err(|e| ScanError::Corrupt(format!("unparseable checkpoint manifest: {e}")))?;
        Manifest::from_json(&json).map(Some)
    }

    /// Durably replace the manifest in `out_dir`: write a temp file,
    /// fsync it, rename over the old one. A kill at any point leaves
    /// either the previous manifest or this one — never a torn file.
    pub fn store(&self, out_dir: &Path) -> Result<(), ScanError> {
        let tmp: PathBuf = out_dir.join(format!("{MANIFEST_FILE}.tmp"));
        let final_path = out_dir.join(MANIFEST_FILE);
        let write = || -> std::io::Result<()> {
            let mut f = fs::File::create(&tmp)?;
            writeln!(f, "{}", self.to_json())?;
            f.sync_all()?;
            fs::rename(&tmp, &final_path)
        };
        write().map_err(|e| ScanError::io(format!("write {}", final_path.display()), e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Manifest {
        let mut m = Manifest::fresh(128, 4, -2.5, 10_000);
        m.input_bytes = 4_096;
        m.lines_done = 520;
        m.quarantined = 3;
        m.quarantine_bytes = 210;
        m.shards.push(ShardEntry {
            file: shard_file_name(0),
            rows: 512,
            errors: 17,
            bytes: 9_999,
            crc32: 0xdead_beef,
        });
        m
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let m = sample();
        let back = Manifest::from_json(&m.to_json()).unwrap();
        assert_eq!(back, m);
        assert_eq!(back.threshold_bits, (-2.5f32).to_bits());
        assert_eq!(back.rows_total(), 512);
        assert_eq!(back.errors_total(), 17);
    }

    #[test]
    fn store_then_load_round_trips_on_disk() {
        let dir = std::env::temp_dir().join(format!("pge-scan-ckpt-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let m = sample();
        m.store(&dir).unwrap();
        let back = Manifest::load(&dir).unwrap().expect("manifest exists");
        assert_eq!(back, m);
        assert!(!dir.join(format!("{MANIFEST_FILE}.tmp")).exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_manifest_is_none_and_garbage_is_corrupt() {
        let dir = std::env::temp_dir().join(format!("pge-scan-ckpt-miss-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        assert_eq!(Manifest::load(&dir).unwrap(), None);
        fs::write(dir.join(MANIFEST_FILE), "not json at all").unwrap();
        assert!(matches!(Manifest::load(&dir), Err(ScanError::Corrupt(_))));
        fs::write(dir.join(MANIFEST_FILE), r#"{"version":2,"shards":[]}"#).unwrap();
        assert!(Manifest::load(&dir).is_err(), "future versions rejected");
        fs::remove_dir_all(&dir).unwrap();
    }
}
