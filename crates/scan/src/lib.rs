//! # pge-scan — checkpointed streaming bulk scan
//!
//! Offline, catalog-scale error detection: stream a raw TSV triple
//! file (`title \t attribute \t value` per line) through a trained
//! PGE model and write sharded, CRC-stamped score files plus a
//! quarantine of unparseable rows — with a durable checkpoint after
//! every shard so a killed scan resumes where it left off and still
//! produces **byte-identical** output to an uninterrupted run.
//!
//! This is the offline half of the deployment story; [`pge-serve`]
//! (online, latency-bound micro-batching) is the other. Both reuse
//! the same [`pge_core`] scoring path and sharded embedding cache, so
//! a score computed by a bulk scan and one computed by the service
//! agree bit-for-bit.
//!
//! ```no_run
//! use pge_scan::{scan, ScanConfig};
//! # fn demo(model: &pge_core::PgeModel) -> Result<(), pge_scan::ScanError> {
//! let mut cfg = ScanConfig::new("scan-out");
//! cfg.jobs = 8;
//! let outcome = scan(model, -2.0, std::path::Path::new("catalog.tsv"), &cfg)?;
//! println!("{} rows, {} flagged", outcome.rows_total, outcome.errors_total);
//! // ... kill + rerun with cfg.resume = true picks up at the last shard.
//! # Ok(()) }
//! ```
//!
//! [`pge-serve`]: ../pge_serve/index.html

pub mod checkpoint;
pub mod pipeline;

pub use checkpoint::{shard_file_name, Manifest, ShardEntry, MANIFEST_FILE, QUARANTINE_FILE};
pub use pipeline::{scan, scan_with_tracer, ScanConfig, ScanError, ScanOutcome};
